//! Table schemas and primary keys.

use std::fmt;

use beldi_value::Value;

use crate::error::{DbError, DbResult};

/// Schema of a table: a hash (partition) attribute, an optional sort
/// attribute, and storage limits.
///
/// The linked DAAL uses `hash = Key`, `sort = RowId` (paper §4.1), so that a
/// [`crate::Database::query`] on `Key` returns every row of one item's DAAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Name of the hash-key attribute.
    pub hash_attr: String,
    /// Name of the sort-key attribute, if the table has one.
    pub sort_attr: Option<String>,
    /// Maximum row size in bytes (DynamoDB: 400 KB).
    pub max_row_bytes: usize,
    /// Secondary index attributes (exact-match lookup).
    pub index_attrs: Vec<String>,
}

/// DynamoDB's documented item size limit in bytes.
pub const DYNAMO_ROW_LIMIT: usize = 400 * 1024;

impl TableSchema {
    /// Creates a hash-only schema with the DynamoDB row limit.
    pub fn hash_only(hash_attr: impl Into<String>) -> Self {
        TableSchema {
            hash_attr: hash_attr.into(),
            sort_attr: None,
            max_row_bytes: DYNAMO_ROW_LIMIT,
            index_attrs: Vec::new(),
        }
    }

    /// Creates a hash+sort schema with the DynamoDB row limit.
    pub fn hash_and_sort(hash_attr: impl Into<String>, sort_attr: impl Into<String>) -> Self {
        TableSchema {
            hash_attr: hash_attr.into(),
            sort_attr: Some(sort_attr.into()),
            max_row_bytes: DYNAMO_ROW_LIMIT,
            index_attrs: Vec::new(),
        }
    }

    /// Sets the row size limit (builder style).
    pub fn with_max_row_bytes(mut self, limit: usize) -> Self {
        self.max_row_bytes = limit;
        self
    }

    /// Adds a secondary index on an attribute (builder style).
    pub fn with_index(mut self, attr: impl Into<String>) -> Self {
        self.index_attrs.push(attr.into());
        self
    }

    /// Extracts the primary key from an item, validating presence.
    pub fn key_of(&self, item: &Value) -> DbResult<PrimaryKey> {
        let hash = item
            .get_attr(&self.hash_attr)
            .cloned()
            .ok_or_else(|| DbError::BadKey(format!("missing hash attr `{}`", self.hash_attr)))?;
        let sort = match &self.sort_attr {
            Some(s) => Some(
                item.get_attr(s)
                    .cloned()
                    .ok_or_else(|| DbError::BadKey(format!("missing sort attr `{s}`")))?,
            ),
            None => None,
        };
        Ok(PrimaryKey { hash, sort })
    }
}

/// A row's primary key: hash value plus optional sort value.
///
/// Ordered by `(hash, sort)` so that a table iterates in query order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrimaryKey {
    /// The hash (partition) key value.
    pub hash: Value,
    /// The sort key value, if the table has a sort attribute.
    pub sort: Option<Value>,
}

impl PrimaryKey {
    /// Creates a hash-only key.
    pub fn hash(hash: impl Into<Value>) -> Self {
        PrimaryKey {
            hash: hash.into(),
            sort: None,
        }
    }

    /// Creates a hash+sort key.
    pub fn hash_sort(hash: impl Into<Value>, sort: impl Into<Value>) -> Self {
        PrimaryKey {
            hash: hash.into(),
            sort: Some(sort.into()),
        }
    }
}

impl fmt::Display for PrimaryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.sort {
            Some(s) => write!(f, "({}, {})", self.hash, s),
            None => write!(f, "({})", self.hash),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beldi_value::vmap;

    #[test]
    fn key_extraction() {
        let schema = TableSchema::hash_and_sort("Key", "RowId");
        let item = vmap! { "Key" => "k1", "RowId" => 0i64, "Value" => "v" };
        let k = schema.key_of(&item).unwrap();
        assert_eq!(k, PrimaryKey::hash_sort("k1", 0i64));
    }

    #[test]
    fn missing_key_attrs_rejected() {
        let schema = TableSchema::hash_and_sort("Key", "RowId");
        assert!(matches!(
            schema.key_of(&vmap! { "Key" => "k1" }),
            Err(DbError::BadKey(_))
        ));
        assert!(matches!(
            schema.key_of(&vmap! { "RowId" => 1i64 }),
            Err(DbError::BadKey(_))
        ));
    }

    #[test]
    fn keys_order_by_hash_then_sort() {
        let a = PrimaryKey::hash_sort("a", 0i64);
        let b = PrimaryKey::hash_sort("a", 1i64);
        let c = PrimaryKey::hash_sort("b", 0i64);
        assert!(a < b && b < c);
    }

    #[test]
    fn builder_options() {
        let s = TableSchema::hash_only("Id")
            .with_max_row_bytes(1024)
            .with_index("Done");
        assert_eq!(s.max_row_bytes, 1024);
        assert_eq!(s.index_attrs, vec!["Done".to_string()]);
        assert!(s.sort_attr.is_none());
    }
}

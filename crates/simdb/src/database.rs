//! The public [`Database`] API.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use beldi_simclock::{ScaledClock, SharedClock, SimInstant};
use beldi_value::{Cond, SizeOf, Update, Value};
use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::error::{DbError, DbResult};
use crate::key::{PrimaryKey, TableSchema};
use crate::latency::{LatencyModel, LatencySampler, OpKind};
use crate::metrics::{DbMetrics, MetricsSnapshot};
use crate::partition::{PartitionData, DEFAULT_PARTITIONS};
use crate::scan::{ScanCursor, ScanPage, ScanRequest};
use crate::table::Table;

/// Rows examined per internal lock acquisition during queries and scans.
///
/// Matches DynamoDB's behaviour of serving scans in pages: rows observed in
/// different pages may interleave with concurrent writers, so scans are not
/// atomic — the property §4.1 of the paper reasons about.
const DEFAULT_PAGE_ROWS: usize = 32;

/// One operation of a cross-table transactional write
/// ([`Database::transact_write`]).
#[derive(Debug, Clone)]
pub enum TransactOp {
    /// Conditionally update (or create) the row at `key`.
    Update {
        /// Target table.
        table: String,
        /// Target row.
        key: PrimaryKey,
        /// Condition that must hold for the whole transaction to commit.
        cond: Cond,
        /// Update applied if every condition in the transaction holds.
        update: Update,
    },
    /// Conditionally insert/replace a full item.
    Put {
        /// Target table.
        table: String,
        /// The full item (must contain key attributes).
        item: Value,
        /// Condition that must hold for the whole transaction to commit.
        cond: Cond,
    },
    /// Conditionally delete the row at `key`.
    Delete {
        /// Target table.
        table: String,
        /// Target row.
        key: PrimaryKey,
        /// Condition that must hold for the whole transaction to commit.
        cond: Cond,
    },
}

impl TransactOp {
    fn table(&self) -> &str {
        match self {
            TransactOp::Update { table, .. }
            | TransactOp::Put { table, .. }
            | TransactOp::Delete { table, .. } => table,
        }
    }

    fn cond(&self) -> &Cond {
        match self {
            TransactOp::Update { cond, .. }
            | TransactOp::Put { cond, .. }
            | TransactOp::Delete { cond, .. } => cond,
        }
    }
}

/// A consistent-per-partition copy of one table's rows, taken (and paid
/// for, in metrics and modelled latency) by [`Database::snapshot_table`].
/// Lookups against it are free — the snapshot-isolation read path
/// amortizes one metered scan over many traversals.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    rows: BTreeMap<PrimaryKey, Value>,
}

impl TableSnapshot {
    /// All rows of one hash key, in sort-key order — what an unfiltered,
    /// unprojected [`Database::query`] would have returned at snapshot
    /// time.
    pub fn rows_for_hash(&self, hash: &Value) -> Vec<Value> {
        let lo = std::ops::Bound::Included(PrimaryKey {
            hash: hash.clone(),
            sort: None,
        });
        self.rows
            .range((lo, std::ops::Bound::Unbounded))
            .take_while(|(k, _)| &k.hash == hash)
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Number of rows captured.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table was empty at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Entry-count threshold above which [`ItemWriteQueue`] drops entries
/// whose busy deadline has already passed.
const ITEM_QUEUE_PRUNE_LEN: usize = 4096;

/// Per-item write admission state: for each recently written item, the
/// virtual instant until which its write capacity is occupied.
///
/// Real DynamoDB serializes writes to a single item (the per-item
/// write-capacity limit that makes hot keys a throughput cliff — the
/// contention §2 of the paper designs the DAAL around), so modelled
/// write latencies against the *same* `(table, key)` must queue behind
/// each other rather than overlap. Writes to distinct items, and all
/// reads, still proceed fully in parallel.
#[derive(Default)]
struct ItemWriteQueue {
    /// table name → key → busy-until instant.
    busy: HashMap<String, HashMap<PrimaryKey, SimInstant>>,
    /// Total entries across all tables (prune trigger).
    entries: usize,
}

/// A simulated strongly consistent NoSQL database.
///
/// Tables are hash-partitioned: each row lives in the partition selected by
/// hashing its hash-key value, and each partition has its own lock. All
/// methods are safe to call from many threads; single-row conditional
/// updates are atomic and linearizable, and [`Database::transact_write`]
/// commits across partitions by acquiring exactly the partition locks its
/// ops touch, in a deterministic global order (no global transaction lock).
///
/// Modelled latency is charged *per operation* and overlaps freely across
/// threads, with one exception: writes to the same item serialize their
/// modelled latency (see [`ItemWriteQueue`]), reproducing DynamoDB's
/// hot-item write ceiling.
pub struct Database {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    clock: SharedClock,
    sampler: LatencySampler,
    metrics: DbMetrics,
    item_writes: Mutex<ItemWriteQueue>,
    transactions_enabled: bool,
    page_rows: usize,
    partitions: usize,
}

impl Database {
    /// Creates a database with the given clock and latency model and the
    /// default partition count ([`DEFAULT_PARTITIONS`]).
    pub fn new(clock: SharedClock, latency: LatencyModel, seed: u64) -> Arc<Self> {
        Database::with_partitions(clock, latency, seed, DEFAULT_PARTITIONS)
    }

    /// Creates a database whose tables are split into `partitions`
    /// independently locked hash partitions.
    pub fn with_partitions(
        clock: SharedClock,
        latency: LatencyModel,
        seed: u64,
        partitions: usize,
    ) -> Arc<Self> {
        Database::build(clock, latency, seed, partitions, true)
    }

    /// Creates a zero-latency database on a real-time clock, for tests.
    pub fn for_tests() -> Arc<Self> {
        Database::new(ScaledClock::shared(1.0), LatencyModel::zero(), 0)
    }

    /// [`Database::for_tests`] with an explicit partition count.
    pub fn for_tests_with_partitions(partitions: usize) -> Arc<Self> {
        Database::with_partitions(
            ScaledClock::shared(1.0),
            LatencyModel::zero(),
            0,
            partitions,
        )
    }

    /// Disables cross-table transactions (simulating e.g. Bigtable).
    pub fn without_transactions(clock: SharedClock, latency: LatencyModel, seed: u64) -> Arc<Self> {
        Database::build(clock, latency, seed, DEFAULT_PARTITIONS, false)
    }

    fn build(
        clock: SharedClock,
        latency: LatencyModel,
        seed: u64,
        partitions: usize,
        transactions_enabled: bool,
    ) -> Arc<Self> {
        assert!(partitions >= 1, "a database needs at least one partition");
        Arc::new(Database {
            tables: RwLock::new(HashMap::new()),
            clock,
            sampler: LatencySampler::new(latency, seed),
            metrics: DbMetrics::new(partitions),
            item_writes: Mutex::new(ItemWriteQueue::default()),
            transactions_enabled,
            page_rows: DEFAULT_PAGE_ROWS,
            partitions,
        })
    }

    /// Returns the database clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Returns the latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        self.sampler.model()
    }

    /// Returns the number of partitions per table.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Returns the live metrics counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Zeroes the metrics counters, returning the values swapped out —
    /// how harnesses open a clean measurement window after setup/seeding
    /// (see [`crate::DbMetrics::reset`] for the consistency contract).
    pub fn reset_metrics(&self) -> MetricsSnapshot {
        self.metrics.reset()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] if the name is taken.
    pub fn create_table(&self, name: impl Into<String>, schema: TableSchema) -> DbResult<()> {
        let name = name.into();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        tables.insert(name, Arc::new(Table::new(schema, self.partitions)));
        Ok(())
    }

    /// Drops a table and all its rows.
    pub fn delete_table(&self, name: &str) -> DbResult<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::TableNotFound(name.to_owned()))
    }

    /// Returns the names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn handle(&self, table: &str) -> DbResult<Arc<Table>> {
        self.tables
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| DbError::TableNotFound(table.to_owned()))
    }

    /// Locks one partition, recording the access (and any lock wait) in
    /// the metrics.
    fn lock_partition<'a>(&self, table: &'a Table, p: usize) -> MutexGuard<'a, PartitionData> {
        let (guard, waited) = table.lock_partition(p);
        self.metrics.record_partition_access(p, waited);
        guard
    }

    /// Sleeps one write's modelled latency `d`, serialized per item:
    /// concurrent writes to the same `(table, key)` queue behind each
    /// other (see [`ItemWriteQueue`]), writes to distinct items overlap.
    /// A multi-item write (transaction) starts after *every* involved
    /// item is free and occupies all of them until it completes.
    ///
    /// Zero-cost samples return immediately, so zero-latency test
    /// databases never touch (or populate) the queue. Sequential callers
    /// are also unaffected: a writer that slept through its own deadline
    /// always finds the item idle on its next write.
    fn serial_write_sleep(&self, items: &[(&str, &PrimaryKey)], d: std::time::Duration) {
        if d.is_zero() {
            return;
        }
        let deadline = {
            // beldi-lint: allow(lock-order/raw-lock, the admission-queue mutex is
            // not a partition lock; it is never held across another acquisition)
            let mut queue = self.item_writes.lock();
            let now = self.clock.now();
            if queue.entries >= ITEM_QUEUE_PRUNE_LEN {
                for table in queue.busy.values_mut() {
                    table.retain(|_, busy| *busy > now);
                }
                queue.busy.retain(|_, table| !table.is_empty());
                queue.entries = queue.busy.values().map(HashMap::len).sum();
            }
            let start = items
                .iter()
                .filter_map(|(t, k)| queue.busy.get(*t).and_then(|m| m.get(*k)))
                .max()
                .map_or(now, |&busy| busy.max(now));
            let deadline = start.plus(d);
            for (t, k) in items {
                let table = queue.busy.entry((*t).to_owned()).or_default();
                if table.insert((*k).clone(), deadline).is_none() {
                    queue.entries += 1;
                }
            }
            deadline
        };
        self.clock.sleep_until(deadline);
    }

    /// Point read of a row, optionally projected.
    pub fn get(
        &self,
        table: &str,
        key: &PrimaryKey,
        projection: Option<&crate::scan::Projection>,
    ) -> DbResult<Option<Value>> {
        let t = self.handle(table)?;
        let item = {
            let data = self.lock_partition(&t, t.route(&key.hash));
            data.rows.get(key).cloned()
        };
        let item = item.map(|v| match projection {
            Some(p) => p.apply(&v),
            None => v,
        });
        let bytes = item.as_ref().map(SizeOf::size_bytes).unwrap_or(0);
        self.metrics.record_op(OpKind::Get);
        self.metrics.record_read_bytes(bytes);
        self.clock.sleep(self.sampler.sample(OpKind::Get, 1, bytes));
        Ok(item)
    }

    /// Unconditional insert/replace of a full item.
    pub fn put(&self, table: &str, item: Value) -> DbResult<()> {
        let t = self.handle(table)?;
        let key = t.schema.key_of(&item)?;
        let size = {
            let mut data = self.lock_partition(&t, t.route(&key.hash));
            data.put_row(key.clone(), item, t.schema.max_row_bytes)?
        };
        self.metrics.record_op(OpKind::Write);
        self.metrics.record_written_bytes(size);
        self.serial_write_sleep(
            &[(table, &key)],
            self.sampler.sample(OpKind::Write, 1, size),
        );
        Ok(())
    }

    /// Atomic conditional update (upsert) of one row.
    ///
    /// The condition is evaluated against the current row — or against an
    /// empty item if the row does not exist (so `not_exists(attr)` holds
    /// for absent rows, matching DynamoDB). On success the update is
    /// applied to the existing row, or to a fresh row containing only the
    /// key attributes.
    ///
    /// # Errors
    ///
    /// [`DbError::ConditionFailed`] when the condition is false — the
    /// signal Beldi's write protocol dispatches on.
    pub fn update(
        &self,
        table: &str,
        key: &PrimaryKey,
        cond: &Cond,
        update: &Update,
    ) -> DbResult<()> {
        let t = self.handle(table)?;
        let result = {
            let mut data = self.lock_partition(&t, t.route(&key.hash));
            Self::apply_update(&mut data, &t.schema, key, cond, update)
        };
        match result {
            Ok(size) => {
                self.metrics.record_op(OpKind::Write);
                self.metrics.record_written_bytes(size);
                self.serial_write_sleep(
                    &[(table, key)],
                    self.sampler.sample(OpKind::Write, 1, size),
                );
                Ok(())
            }
            Err(DbError::ConditionFailed) => {
                self.metrics.record_op(OpKind::Write);
                self.metrics.record_cond_failure();
                // A failed conditional write still costs a round trip —
                // and still occupies the item's write capacity.
                self.serial_write_sleep(&[(table, key)], self.sampler.sample(OpKind::Write, 1, 0));
                Err(DbError::ConditionFailed)
            }
            Err(e) => Err(e),
        }
    }

    /// Applies a conditional update under a partition lock; returns the
    /// new row size.
    fn apply_update(
        data: &mut PartitionData,
        schema: &TableSchema,
        key: &PrimaryKey,
        cond: &Cond,
        update: &Update,
    ) -> DbResult<usize> {
        let existing = data.rows.get(key).cloned();
        let base = match &existing {
            Some(row) => row.clone(),
            None => Value::Map(beldi_value::Map::new()),
        };
        if !cond.eval(&base)? {
            return Err(DbError::ConditionFailed);
        }
        let mut new_row = match existing {
            Some(row) => row,
            None => {
                // Fresh row: seed it with the key attributes.
                let mut m = beldi_value::Map::new();
                m.insert(schema.hash_attr.clone(), key.hash.clone());
                if let (Some(attr), Some(sort)) = (&schema.sort_attr, &key.sort) {
                    m.insert(attr.clone(), sort.clone());
                }
                Value::Map(m)
            }
        };
        update.apply(&mut new_row)?;
        data.put_row(key.clone(), new_row, schema.max_row_bytes)
    }

    /// Conditionally deletes a row.
    ///
    /// Deleting an absent row succeeds if the condition holds against the
    /// empty item (DynamoDB semantics).
    pub fn delete(&self, table: &str, key: &PrimaryKey, cond: &Cond) -> DbResult<()> {
        let t = self.handle(table)?;
        let result = {
            let mut data = self.lock_partition(&t, t.route(&key.hash));
            let base = data
                .rows
                .get(key)
                .cloned()
                .unwrap_or_else(|| Value::Map(beldi_value::Map::new()));
            if !cond.eval(&base)? {
                Err(DbError::ConditionFailed)
            } else {
                data.remove_row(key);
                Ok(())
            }
        };
        self.metrics.record_op(OpKind::Delete);
        if matches!(result, Err(DbError::ConditionFailed)) {
            self.metrics.record_cond_failure();
        }
        self.serial_write_sleep(&[(table, key)], self.sampler.sample(OpKind::Delete, 1, 0));
        result
    }

    /// Queries every row sharing a hash key, in sort-key order.
    ///
    /// All rows of one hash key live in a single partition, so the query
    /// locks exactly that partition — and only page by page
    /// (`DEFAULT_PAGE_ROWS` rows each), with the lock released between
    /// pages, so the result is **not** an atomic snapshot — exactly the
    /// behaviour Beldi's DAAL traversal must (and does) tolerate (§4.1).
    pub fn query(&self, table: &str, hash: &Value, req: &ScanRequest) -> DbResult<Vec<Value>> {
        let t = self.handle(table)?;
        let part = t.route(hash);
        let mut out = Vec::new();
        let mut resume: Option<PrimaryKey> = req.start_after.clone();
        loop {
            let mut page_rows = 0usize;
            let mut page_bytes = 0usize;
            let mut last: Option<PrimaryKey> = None;
            {
                let data = self.lock_partition(&t, part);
                let lo = match &resume {
                    Some(k) => std::ops::Bound::Excluded(k.clone()),
                    None => std::ops::Bound::Included(PrimaryKey {
                        hash: hash.clone(),
                        sort: None,
                    }),
                };
                for (k, row) in data.rows.range((lo, std::ops::Bound::Unbounded)) {
                    if &k.hash != hash {
                        break;
                    }
                    page_rows += 1;
                    last = Some(k.clone());
                    let keep = match &req.filter {
                        Some(f) => f.eval(row)?,
                        None => true,
                    };
                    if keep {
                        let item = match &req.projection {
                            Some(p) => p.apply(row),
                            None => row.clone(),
                        };
                        page_bytes += item.size_bytes();
                        out.push(item);
                        if let Some(limit) = req.limit {
                            if out.len() >= limit {
                                break;
                            }
                        }
                    }
                    if page_rows >= self.page_rows {
                        break;
                    }
                }
            }
            self.metrics.record_op(OpKind::Query);
            self.metrics.record_rows_scanned(page_rows);
            self.metrics.record_read_bytes(page_bytes);
            self.clock
                .sleep(self.sampler.sample(OpKind::Query, page_rows, page_bytes));
            if page_rows < self.page_rows {
                break;
            }
            if let Some(limit) = req.limit {
                if out.len() >= limit {
                    break;
                }
            }
            resume = last;
        }
        Ok(out)
    }

    /// Serves one page of a full-table scan.
    ///
    /// Partitions are visited in index order, each in key order; one page
    /// may span a partition boundary but never holds more than one
    /// partition lock at a time. Resume via [`ScanPage::cursor`].
    pub fn scan_page(&self, table: &str, req: &ScanRequest) -> DbResult<ScanPage> {
        let t = self.handle(table)?;
        let limit = req.limit.unwrap_or(self.page_rows).min(self.page_rows);
        let (mut part, mut after) = match &req.cursor {
            Some(c) => (c.partition, Some(c.key.clone())),
            None => (0, None),
        };
        let mut items = Vec::new();
        let mut cursor: Option<ScanCursor> = None;
        let mut rows_examined = 0usize;
        let mut bytes = 0usize;
        'partitions: while part < t.partition_count() {
            let data = self.lock_partition(&t, part);
            let lo = match after.take() {
                Some(k) => std::ops::Bound::Excluded(k),
                None => std::ops::Bound::Unbounded,
            };
            for (k, row) in data.rows.range((lo, std::ops::Bound::Unbounded)) {
                if items.len() >= limit || rows_examined >= self.page_rows {
                    // Page full with this row still unexamined: resume here.
                    break 'partitions;
                }
                rows_examined += 1;
                cursor = Some(ScanCursor {
                    partition: part,
                    key: k.clone(),
                });
                let keep = match &req.filter {
                    Some(f) => f.eval(row)?,
                    None => true,
                };
                if keep {
                    let item = match &req.projection {
                        Some(p) => p.apply(row),
                        None => row.clone(),
                    };
                    bytes += item.size_bytes();
                    items.push(item);
                }
            }
            drop(data);
            part += 1;
            if part >= t.partition_count() {
                // Walked every partition to its end: the scan is complete.
                cursor = None;
            }
        }
        self.metrics.record_op(OpKind::Scan);
        self.metrics.record_rows_scanned(rows_examined);
        self.metrics.record_read_bytes(bytes);
        self.clock
            .sleep(self.sampler.sample(OpKind::Scan, rows_examined, bytes));
        Ok(ScanPage { items, cursor })
    }

    /// Scans the whole table, following pages to completion.
    pub fn scan_all(&self, table: &str, req: &ScanRequest) -> DbResult<Vec<Value>> {
        let mut out = Vec::new();
        let mut page_req = req.clone();
        page_req.limit = None;
        loop {
            let page = self.scan_page(table, &page_req)?;
            out.extend(page.items);
            match page.cursor {
                Some(c) => page_req.cursor = Some(c),
                None => break,
            }
        }
        Ok(out)
    }

    /// Exact-match lookup through a secondary index, returning full rows
    /// in key order (the per-partition index shards are merged on read).
    pub fn index_query(&self, table: &str, attr: &str, value: &Value) -> DbResult<Vec<Value>> {
        let t = self.handle(table)?;
        let mut hits: Vec<(PrimaryKey, Value)> = Vec::new();
        let mut bytes = 0usize;
        for part in 0..t.partition_count() {
            let data = self.lock_partition(&t, part);
            for k in data.index_lookup(attr, value)? {
                if let Some(row) = data.rows.get(&k) {
                    bytes += row.size_bytes();
                    hits.push((k, row.clone()));
                }
            }
        }
        hits.sort_by(|a, b| a.0.cmp(&b.0));
        let items: Vec<Value> = hits.into_iter().map(|(_, row)| row).collect();
        self.metrics.record_op(OpKind::Query);
        self.metrics.record_rows_scanned(items.len());
        self.metrics.record_read_bytes(bytes);
        self.clock
            .sleep(self.sampler.sample(OpKind::Query, items.len(), bytes));
        Ok(items)
    }

    /// Returns the distinct hash-key values of a table, sorted (GC
    /// support; per-partition listings are merged on read).
    pub fn distinct_hash_keys(&self, table: &str) -> DbResult<Vec<Value>> {
        let t = self.handle(table)?;
        let mut keys: Vec<Value> = Vec::new();
        for part in 0..t.partition_count() {
            let data = self.lock_partition(&t, part);
            keys.extend(data.distinct_hash_keys());
        }
        keys.sort();
        keys.dedup();
        self.metrics.record_op(OpKind::Scan);
        self.metrics.record_rows_scanned(keys.len());
        self.clock
            .sleep(self.sampler.sample(OpKind::Scan, keys.len(), 0));
        Ok(keys)
    }

    /// The number of rows currently stored in a table.
    ///
    /// Out-of-band observability (storage-growth tracking for the
    /// workload driver and GC experiments): it sums the partition map
    /// sizes directly, bypassing the latency model and the operation
    /// metrics, and is not atomic across partitions — a concurrent
    /// writer may be counted in one partition and not yet in another.
    pub fn row_count(&self, table: &str) -> DbResult<usize> {
        let t = self.handle(table)?;
        let mut rows = 0;
        for p in 0..t.partition_count() {
            let (data, _) = t.lock_partition(p);
            rows += data.rows.len();
        }
        Ok(rows)
    }

    /// Per-table row counts for every table, sorted by name (see
    /// [`Database::row_count`] for the consistency caveats).
    pub fn table_row_counts(&self) -> Vec<(String, usize)> {
        self.table_names()
            .into_iter()
            .map(|name| {
                let rows = self.row_count(&name).unwrap_or(0);
                (name, rows)
            })
            .collect()
    }

    /// Takes a deterministic logical snapshot of every table
    /// ([`crate::DbSnapshot`]).
    ///
    /// Rows are collected per table in primary-key order, so the result is
    /// independent of the partition count and of partition visit order —
    /// two databases holding the same logical rows snapshot identically.
    /// This is out-of-band verification tooling: it bypasses the latency
    /// model and the operation metrics, and it is not atomic across
    /// partitions (snapshot a quiescent database).
    pub fn snapshot(&self) -> crate::DbSnapshot {
        let handles: Vec<(String, Arc<Table>)> = {
            let tables = self.tables.read();
            let mut v: Vec<(String, Arc<Table>)> = tables
                .iter()
                .map(|(name, t)| (name.clone(), t.clone()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let mut out: BTreeMap<String, BTreeMap<PrimaryKey, Value>> = BTreeMap::new();
        for (name, t) in handles {
            let mut rows = BTreeMap::new();
            for p in 0..t.partition_count() {
                let (data, _) = t.lock_partition(p);
                for (k, v) in &data.rows {
                    rows.insert(k.clone(), v.clone());
                }
            }
            out.insert(name, rows);
        }
        crate::DbSnapshot::new(out)
    }

    /// Takes a *metered* snapshot of one table's rows, in primary-key
    /// order — the storage half of snapshot-isolation reads.
    ///
    /// Unlike [`Database::snapshot`] (out-of-band verification tooling),
    /// this is a first-class read operation: it records one [`OpKind::Scan`]
    /// covering every row and pays the scan's modelled latency, so a
    /// client that snapshots once and then answers many reads from the
    /// result is measurably cheaper than one that re-scans per read.
    ///
    /// Each partition is locked once and copied whole, so the snapshot is
    /// *per-partition consistent* (all rows of one hash key live in one
    /// partition, hence any single key's row set is internally
    /// consistent); it is not atomic across partitions, the same contract
    /// as a paged scan.
    pub fn snapshot_table(&self, table: &str) -> DbResult<TableSnapshot> {
        let t = self.handle(table)?;
        let mut rows: BTreeMap<PrimaryKey, Value> = BTreeMap::new();
        let mut bytes = 0usize;
        for p in 0..t.partition_count() {
            let data = self.lock_partition(&t, p);
            for (k, v) in &data.rows {
                bytes += v.size_bytes();
                rows.insert(k.clone(), v.clone());
            }
        }
        self.metrics.record_op(OpKind::Scan);
        self.metrics.record_rows_scanned(rows.len());
        self.metrics.record_read_bytes(bytes);
        self.clock
            .sleep(self.sampler.sample(OpKind::Scan, rows.len(), bytes));
        Ok(TableSnapshot { rows })
    }

    /// Atomically applies a batch of conditional writes across tables.
    ///
    /// All condition checks are evaluated first; if any fails the whole
    /// batch is rejected with [`DbError::TransactionCanceled`] and nothing
    /// is applied. This is the DynamoDB `TransactWriteItems` the paper's
    /// cross-table-transaction comparator uses (Figs. 13, 16, 25).
    ///
    /// There is no global transaction lock: the transaction determines the
    /// `(table, partition)` pairs its ops touch, acquires exactly those
    /// partition locks in ascending `(table, partition)` order — a total
    /// order shared by every transaction, so lock acquisition cannot
    /// deadlock — validates every condition, and applies all ops while
    /// still holding the locks. Transactions touching disjoint partitions
    /// proceed fully in parallel.
    ///
    /// # Errors
    ///
    /// - [`DbError::TransactionsUnsupported`] when disabled (Bigtable
    ///   mode);
    /// - [`DbError::DuplicateTransactionItem`] when two ops target the
    ///   same row (DynamoDB's restriction — and a semantic necessity here,
    ///   since conditions are validated against the pre-state only).
    pub fn transact_write(&self, ops: &[TransactOp]) -> DbResult<()> {
        if !self.transactions_enabled {
            return Err(DbError::TransactionsUnsupported);
        }
        // Resolve handles first so TableNotFound beats TransactionCanceled,
        // then extract per-op keys (Puts derive theirs from the schema,
        // which lives outside the partition locks) and the lock set.
        let mut handles: HashMap<String, Arc<Table>> = HashMap::new();
        for op in ops {
            if !handles.contains_key(op.table()) {
                handles.insert(op.table().to_owned(), self.handle(op.table())?);
            }
        }
        let mut op_keys: Vec<(PrimaryKey, usize)> = Vec::with_capacity(ops.len());
        let mut lock_set: BTreeSet<(&str, usize)> = BTreeSet::new();
        let mut seen_rows: BTreeSet<(&str, PrimaryKey)> = BTreeSet::new();
        for op in ops {
            let t = &handles[op.table()];
            let key = match op {
                TransactOp::Update { key, .. } | TransactOp::Delete { key, .. } => key.clone(),
                TransactOp::Put { item, .. } => t.schema.key_of(item)?,
            };
            // DynamoDB rejects transactions with multiple operations on
            // one item; conditions here are validated against the
            // pre-state only, so allowing duplicates would let a later
            // op's condition ignore an earlier op's effect.
            if !seen_rows.insert((op.table(), key.clone())) {
                return Err(DbError::DuplicateTransactionItem {
                    item: format!("{}/{}", op.table(), key),
                });
            }
            let part = t.route(&key.hash);
            lock_set.insert((op.table(), part));
            op_keys.push((key, part));
        }

        // Acquire the partition locks in ascending (table, partition)
        // order — the deadlock-freedom invariant.
        let mut guards: BTreeMap<(&str, usize), MutexGuard<'_, PartitionData>> = BTreeMap::new();
        for &(table, part) in &lock_set {
            let guard = self.lock_partition(&handles[table], part);
            guards.insert((table, part), guard);
        }

        // Validate every condition against the pre-state. All touched
        // partitions are locked, so this is one atomic validation point —
        // no re-check or rollback dance against racing single-row writers.
        for (i, op) in ops.iter().enumerate() {
            let (key, part) = &op_keys[i];
            let data = &guards[&(op.table(), *part)];
            let base = data
                .rows
                .get(key)
                .cloned()
                .unwrap_or_else(|| Value::Map(beldi_value::Map::new()));
            if !op.cond().eval(&base)? {
                drop(guards);
                self.metrics.record_op(OpKind::TransactWrite);
                self.metrics.record_cond_failure();
                let items: Vec<(&str, &PrimaryKey)> = ops
                    .iter()
                    .zip(&op_keys)
                    .map(|(op, (key, _))| (op.table(), key))
                    .collect();
                self.serial_write_sleep(
                    &items,
                    self.sampler.sample(OpKind::TransactWrite, ops.len(), 0),
                );
                return Err(DbError::TransactionCanceled { failed_op: i });
            }
        }

        // Apply. Structural failures (e.g. a row outgrowing the size cap)
        // roll the already-applied ops back under the still-held locks, so
        // even the failure path is atomic.
        let mut applied: Vec<(usize, PrimaryKey, usize, Option<Value>)> = Vec::new();
        let mut bytes = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let (key, part) = &op_keys[i];
            let t = &handles[op.table()];
            let data = guards
                .get_mut(&(op.table(), *part))
                .expect("partition locked above");
            let prior = data.rows.get(key).cloned();
            let result = match op {
                TransactOp::Update { update, .. } => {
                    Self::apply_update(data, &t.schema, key, &Cond::True, update)
                }
                TransactOp::Put { item, .. } => {
                    data.put_row(key.clone(), item.clone(), t.schema.max_row_bytes)
                }
                TransactOp::Delete { .. } => {
                    data.remove_row(key);
                    Ok(0)
                }
            };
            match result {
                Ok(n) => {
                    bytes += n;
                    applied.push((i, key.clone(), *part, prior));
                }
                Err(e) => {
                    for (j, key, part, prior) in applied.iter().rev() {
                        let t = &handles[ops[*j].table()];
                        let data = guards
                            .get_mut(&(ops[*j].table(), *part))
                            .expect("partition locked above");
                        match prior {
                            // Restoring a row that previously fit cannot
                            // overflow.
                            Some(row) => {
                                let _ =
                                    data.put_row(key.clone(), row.clone(), t.schema.max_row_bytes);
                            }
                            None => {
                                data.remove_row(key);
                            }
                        }
                    }
                    return Err(e);
                }
            }
        }
        drop(guards);
        self.metrics.record_op(OpKind::TransactWrite);
        self.metrics.record_written_bytes(bytes);
        let items: Vec<(&str, &PrimaryKey)> = ops
            .iter()
            .zip(&op_keys)
            .map(|(op, (key, _))| (op.table(), key))
            .collect();
        self.serial_write_sleep(
            &items,
            self.sampler.sample(OpKind::TransactWrite, ops.len(), bytes),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Projection;
    use beldi_value::vmap;

    fn db_with_table() -> Arc<Database> {
        let db = Database::for_tests();
        db.create_table("t", TableSchema::hash_and_sort("Key", "RowId"))
            .unwrap();
        db
    }

    #[test]
    fn hot_item_writes_serialize_but_distinct_items_overlap() {
        use std::time::Duration;
        // Constant 20 ms virtual writes (zero() has no jitter or tail),
        // clock at 10x so the serialized phase costs ~32 ms real.
        let model = LatencyModel {
            write_base: Duration::from_millis(20),
            ..LatencyModel::zero()
        };
        let db = Database::with_partitions(ScaledClock::shared(10.0), model, 0, 8);
        db.create_table("t", TableSchema::hash_only("Id")).unwrap();
        let clock = db.clock().clone();
        let run = |pick: &(dyn Fn(usize) -> PrimaryKey + Sync)| {
            let t0 = clock.now();
            std::thread::scope(|s| {
                for w in 0..4 {
                    let db = &db;
                    s.spawn(move || {
                        let key = pick(w);
                        for _ in 0..4 {
                            db.update("t", &key, &Cond::True, &Update::new().inc("N", 1))
                                .unwrap();
                        }
                    });
                }
            });
            clock.now().since(t0)
        };
        let hot = run(&|_| PrimaryKey::hash("hot"));
        let distinct = run(&|w| PrimaryKey::hash(format!("k{w}")));
        // 16 writes to one item at a constant 20 ms each may not
        // overlap: ≥ 16 × 20 ms of virtual time end to end. Four
        // distinct items written in parallel need only ~4 × 20 ms
        // per thread.
        assert!(
            hot >= Duration::from_millis(315),
            "hot-item writes overlapped: {hot:?}"
        );
        assert!(
            distinct.as_millis() * 2 < hot.as_millis(),
            "distinct-item writes did not overlap: {distinct:?} vs {hot:?}"
        );
    }

    #[test]
    fn put_get_roundtrip() {
        let db = db_with_table();
        db.put("t", vmap! { "Key" => "a", "RowId" => 0i64, "V" => 1i64 })
            .unwrap();
        let got = db
            .get("t", &PrimaryKey::hash_sort("a", 0i64), None)
            .unwrap()
            .unwrap();
        assert_eq!(got.get_int("V"), Some(1));
        assert!(db
            .get("t", &PrimaryKey::hash_sort("a", 1i64), None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn get_with_projection() {
        let db = db_with_table();
        db.put(
            "t",
            vmap! { "Key" => "a", "RowId" => 0i64, "V" => 1i64, "W" => 2i64 },
        )
        .unwrap();
        let got = db
            .get(
                "t",
                &PrimaryKey::hash_sort("a", 0i64),
                Some(&Projection::attrs(["V"])),
            )
            .unwrap()
            .unwrap();
        assert_eq!(got.get_int("V"), Some(1));
        assert!(got.get_attr("W").is_none());
        assert!(got.get_attr("Key").is_none());
    }

    #[test]
    fn conditional_update_success_and_failure() {
        let db = db_with_table();
        let key = PrimaryKey::hash_sort("a", 0i64);
        db.put("t", vmap! { "Key" => "a", "RowId" => 0i64, "N" => 1i64 })
            .unwrap();
        db.update("t", &key, &Cond::eq("N", 1i64), &Update::new().inc("N", 1))
            .unwrap();
        assert_eq!(
            db.get("t", &key, None).unwrap().unwrap().get_int("N"),
            Some(2)
        );
        let err = db
            .update("t", &key, &Cond::eq("N", 1i64), &Update::new().inc("N", 1))
            .unwrap_err();
        assert_eq!(err, DbError::ConditionFailed);
        assert_eq!(db.metrics().cond_failures, 1);
    }

    #[test]
    fn update_upserts_row_with_key_attrs() {
        let db = db_with_table();
        let key = PrimaryKey::hash_sort("new", 3i64);
        db.update(
            "t",
            &key,
            &Cond::not_exists("Key"),
            &Update::new().set("V", "hello"),
        )
        .unwrap();
        let row = db.get("t", &key, None).unwrap().unwrap();
        assert_eq!(row.get_str("Key"), Some("new"));
        assert_eq!(row.get_int("RowId"), Some(3));
        assert_eq!(row.get_str("V"), Some("hello"));
    }

    #[test]
    fn update_on_missing_row_condition_sees_empty_item() {
        let db = db_with_table();
        let key = PrimaryKey::hash_sort("x", 0i64);
        // Comparison against missing attr fails...
        assert_eq!(
            db.update(
                "t",
                &key,
                &Cond::eq("N", 0i64),
                &Update::new().set("N", 1i64)
            ),
            Err(DbError::ConditionFailed)
        );
        // ...but not_exists succeeds.
        db.update(
            "t",
            &key,
            &Cond::not_exists("N"),
            &Update::new().set("N", 1i64),
        )
        .unwrap();
    }

    #[test]
    fn delete_with_condition() {
        let db = db_with_table();
        let key = PrimaryKey::hash_sort("a", 0i64);
        db.put("t", vmap! { "Key" => "a", "RowId" => 0i64, "N" => 5i64 })
            .unwrap();
        assert_eq!(
            db.delete("t", &key, &Cond::eq("N", 4i64)),
            Err(DbError::ConditionFailed)
        );
        db.delete("t", &key, &Cond::eq("N", 5i64)).unwrap();
        assert!(db.get("t", &key, None).unwrap().is_none());
    }

    #[test]
    fn query_returns_hash_rows_in_sort_order() {
        let db = db_with_table();
        for i in [2i64, 0, 1] {
            db.put("t", vmap! { "Key" => "a", "RowId" => i, "V" => i })
                .unwrap();
        }
        db.put("t", vmap! { "Key" => "b", "RowId" => 0i64, "V" => 99i64 })
            .unwrap();
        let rows = db
            .query("t", &Value::from("a"), &ScanRequest::all())
            .unwrap();
        assert_eq!(rows.len(), 3);
        let ids: Vec<i64> = rows.iter().map(|r| r.get_int("RowId").unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn query_spans_multiple_pages() {
        let db = db_with_table();
        let n = DEFAULT_PAGE_ROWS * 3 + 5;
        for i in 0..n {
            db.put("t", vmap! { "Key" => "a", "RowId" => i as i64 })
                .unwrap();
        }
        let rows = db
            .query("t", &Value::from("a"), &ScanRequest::all())
            .unwrap();
        assert_eq!(rows.len(), n);
    }

    #[test]
    fn query_with_filter_and_projection() {
        let db = db_with_table();
        for i in 0..10i64 {
            db.put(
                "t",
                vmap! { "Key" => "a", "RowId" => i, "V" => i, "Junk" => "x".repeat(50) },
            )
            .unwrap();
        }
        let req = ScanRequest::all()
            .with_filter(Cond::ge("V", 7i64))
            .with_projection(Projection::attrs(["RowId"]));
        let rows = db.query("t", &Value::from("a"), &req).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.get_attr("Junk").is_none()));
    }

    #[test]
    fn scan_all_pages_through_everything() {
        let db = db_with_table();
        let n = DEFAULT_PAGE_ROWS * 2 + 7;
        for i in 0..n {
            db.put("t", vmap! { "Key" => format!("k{i:04}"), "RowId" => 0i64 })
                .unwrap();
        }
        let rows = db.scan_all("t", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), n);
    }

    #[test]
    fn scan_page_resumption() {
        let db = db_with_table();
        for i in 0..10i64 {
            db.put("t", vmap! { "Key" => format!("k{i}"), "RowId" => 0i64 })
                .unwrap();
        }
        let page1 = db
            .scan_page("t", &ScanRequest::all().with_limit(4))
            .unwrap();
        assert_eq!(page1.items.len(), 4);
        let page2 = db
            .scan_page(
                "t",
                &ScanRequest::all()
                    .with_limit(100)
                    .with_cursor(page1.cursor.unwrap()),
            )
            .unwrap();
        assert_eq!(page2.items.len(), 6);
    }

    #[test]
    fn secondary_index_query() {
        let db = Database::for_tests();
        db.create_table("intents", TableSchema::hash_only("Id").with_index("Done"))
            .unwrap();
        db.put("intents", vmap! { "Id" => "i1", "Done" => false })
            .unwrap();
        db.put("intents", vmap! { "Id" => "i2", "Done" => true })
            .unwrap();
        db.put("intents", vmap! { "Id" => "i3", "Done" => false })
            .unwrap();
        let unfinished = db
            .index_query("intents", "Done", &Value::Bool(false))
            .unwrap();
        assert_eq!(unfinished.len(), 2);
    }

    #[test]
    fn transact_write_applies_all_or_nothing() {
        let db = Database::for_tests();
        db.create_table("a", TableSchema::hash_only("Id")).unwrap();
        db.create_table("b", TableSchema::hash_only("Id")).unwrap();
        db.put("a", vmap! { "Id" => "x", "N" => 1i64 }).unwrap();

        // Succeeds: both conditions hold.
        db.transact_write(&[
            TransactOp::Update {
                table: "a".into(),
                key: PrimaryKey::hash("x"),
                cond: Cond::eq("N", 1i64),
                update: Update::new().inc("N", 1),
            },
            TransactOp::Put {
                table: "b".into(),
                item: vmap! { "Id" => "y", "V" => 7i64 },
                cond: Cond::not_exists("Id"),
            },
        ])
        .unwrap();
        assert_eq!(
            db.get("a", &PrimaryKey::hash("x"), None)
                .unwrap()
                .unwrap()
                .get_int("N"),
            Some(2)
        );

        // Fails atomically: second condition false, first must not apply.
        let err = db
            .transact_write(&[
                TransactOp::Update {
                    table: "a".into(),
                    key: PrimaryKey::hash("x"),
                    cond: Cond::eq("N", 2i64),
                    update: Update::new().inc("N", 1),
                },
                TransactOp::Put {
                    table: "b".into(),
                    item: vmap! { "Id" => "y" },
                    cond: Cond::not_exists("Id"),
                },
            ])
            .unwrap_err();
        assert_eq!(err, DbError::TransactionCanceled { failed_op: 1 });
        assert_eq!(
            db.get("a", &PrimaryKey::hash("x"), None)
                .unwrap()
                .unwrap()
                .get_int("N"),
            Some(2),
            "first op must not have been applied"
        );
    }

    #[test]
    fn transact_write_rolls_back_structural_failures() {
        let db = Database::for_tests();
        db.create_table("a", TableSchema::hash_only("Id").with_max_row_bytes(64))
            .unwrap();
        db.put("a", vmap! { "Id" => "x", "N" => 1i64 }).unwrap();
        // Op 0 applies, op 1 overflows the row cap: op 0 must be rolled
        // back under the still-held partition locks.
        let err = db
            .transact_write(&[
                TransactOp::Update {
                    table: "a".into(),
                    key: PrimaryKey::hash("x"),
                    cond: Cond::True,
                    update: Update::new().inc("N", 1),
                },
                TransactOp::Put {
                    table: "a".into(),
                    item: vmap! { "Id" => "big", "V" => "x".repeat(200) },
                    cond: Cond::True,
                },
            ])
            .unwrap_err();
        assert!(matches!(err, DbError::RowTooLarge { .. }));
        assert_eq!(
            db.get("a", &PrimaryKey::hash("x"), None)
                .unwrap()
                .unwrap()
                .get_int("N"),
            Some(1),
            "applied op must have been rolled back"
        );
        assert!(db
            .get("a", &PrimaryKey::hash("big"), None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn transact_write_with_multiple_ops_in_one_partition() {
        // P = 1 forces every op into the same partition: the lock set must
        // deduplicate rather than self-deadlock.
        let db = Database::for_tests_with_partitions(1);
        db.create_table("a", TableSchema::hash_only("Id")).unwrap();
        db.transact_write(&[
            TransactOp::Put {
                table: "a".into(),
                item: vmap! { "Id" => "x", "N" => 1i64 },
                cond: Cond::True,
            },
            TransactOp::Put {
                table: "a".into(),
                item: vmap! { "Id" => "y", "N" => 2i64 },
                cond: Cond::True,
            },
        ])
        .unwrap();
        assert_eq!(
            db.get("a", &PrimaryKey::hash("y"), None)
                .unwrap()
                .unwrap()
                .get_int("N"),
            Some(2)
        );
    }

    #[test]
    fn transact_write_rejects_duplicate_items() {
        let db = Database::for_tests();
        db.create_table("a", TableSchema::hash_only("Id")).unwrap();
        // Two ops on the same row: the second op's condition would be
        // validated against the pre-state, blind to the first op's Put —
        // DynamoDB rejects such transactions, and so do we.
        let err = db
            .transact_write(&[
                TransactOp::Put {
                    table: "a".into(),
                    item: vmap! { "Id" => "x" },
                    cond: Cond::True,
                },
                TransactOp::Update {
                    table: "a".into(),
                    key: PrimaryKey::hash("x"),
                    cond: Cond::not_exists("Id"),
                    update: Update::new().set("N", 1i64),
                },
            ])
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateTransactionItem { .. }));
        assert!(
            db.get("a", &PrimaryKey::hash("x"), None).unwrap().is_none(),
            "rejected transaction must not apply anything"
        );
        // Same key in different tables is fine.
        db.create_table("b", TableSchema::hash_only("Id")).unwrap();
        db.transact_write(&[
            TransactOp::Put {
                table: "a".into(),
                item: vmap! { "Id" => "x" },
                cond: Cond::True,
            },
            TransactOp::Put {
                table: "b".into(),
                item: vmap! { "Id" => "x" },
                cond: Cond::True,
            },
        ])
        .unwrap();
    }

    #[test]
    fn transactions_can_be_disabled() {
        let db = Database::without_transactions(ScaledClock::shared(1.0), LatencyModel::zero(), 0);
        db.create_table("a", TableSchema::hash_only("Id")).unwrap();
        assert_eq!(
            db.transact_write(&[TransactOp::Put {
                table: "a".into(),
                item: vmap! { "Id" => "x" },
                cond: Cond::True,
            }]),
            Err(DbError::TransactionsUnsupported)
        );
    }

    #[test]
    fn missing_table_errors() {
        let db = Database::for_tests();
        assert!(matches!(
            db.get("nope", &PrimaryKey::hash("x"), None),
            Err(DbError::TableNotFound(_))
        ));
        assert!(matches!(
            db.query("nope", &Value::from("x"), &ScanRequest::all()),
            Err(DbError::TableNotFound(_))
        ));
    }

    #[test]
    fn create_table_twice_fails_and_delete_works() {
        let db = db_with_table();
        assert!(matches!(
            db.create_table("t", TableSchema::hash_only("Id")),
            Err(DbError::TableExists(_))
        ));
        db.delete_table("t").unwrap();
        assert!(matches!(
            db.delete_table("t"),
            Err(DbError::TableNotFound(_))
        ));
    }

    #[test]
    fn concurrent_conditional_increments_never_lose_updates() {
        let db = db_with_table();
        let key = PrimaryKey::hash_sort("ctr", 0i64);
        db.put("t", vmap! { "Key" => "ctr", "RowId" => 0i64, "N" => 0i64 })
            .unwrap();
        let threads = 8;
        let per_thread = 50;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        // CAS loop: read then conditional increment.
                        loop {
                            let cur = db
                                .get("t", &key, None)
                                .unwrap()
                                .unwrap()
                                .get_int("N")
                                .unwrap();
                            let r = db.update(
                                "t",
                                &key,
                                &Cond::eq("N", cur),
                                &Update::new().inc("N", 1),
                            );
                            match r {
                                Ok(()) => break,
                                Err(DbError::ConditionFailed) => continue,
                                Err(e) => panic!("unexpected: {e}"),
                            }
                        }
                    }
                });
            }
        });
        let n = db.get("t", &key, None).unwrap().unwrap().get_int("N");
        assert_eq!(n, Some((threads * per_thread) as i64));
    }

    #[test]
    fn metrics_count_reads_and_bytes() {
        let db = db_with_table();
        db.put("t", vmap! { "Key" => "a", "RowId" => 0i64, "V" => "hello" })
            .unwrap();
        let before = db.metrics();
        db.get("t", &PrimaryKey::hash_sort("a", 0i64), None)
            .unwrap();
        let d = db.metrics().delta(&before);
        assert_eq!(d.gets, 1);
        assert!(d.bytes_read > 0);
    }

    #[test]
    fn metrics_track_partition_accesses() {
        let db = db_with_table();
        assert_eq!(db.metrics().partition_ops.len(), db.partitions());
        for i in 0..20i64 {
            db.put("t", vmap! { "Key" => format!("k{i}"), "RowId" => 0i64 })
                .unwrap();
        }
        let s = db.metrics();
        assert_eq!(
            s.partition_ops.iter().sum::<u64>(),
            20,
            "each put locks exactly one partition"
        );
        assert!(
            s.partition_ops.iter().filter(|&&n| n > 0).count() > 1,
            "uniform keys should spread over partitions: {:?}",
            s.partition_ops
        );
    }

    #[test]
    fn snapshot_table_is_metered_and_serves_sorted_hash_lookups() {
        let db = db_with_table();
        for key in ["a", "b"] {
            for row in 0..3i64 {
                db.put("t", vmap! { "Key" => key, "RowId" => row, "V" => row * 10 })
                    .unwrap();
            }
        }
        let before = db.metrics();
        let snap = db.snapshot_table("t").unwrap();
        let after = db.metrics();
        // One metered scan covering every row — unlike `snapshot()`,
        // which is out-of-band.
        assert_eq!(after.scans, before.scans + 1);
        assert_eq!(after.rows_scanned, before.rows_scanned + 6);
        assert!(after.bytes_read > before.bytes_read);
        assert_eq!(snap.len(), 6);
        // Hash lookups return exactly the query result, in sort order.
        let a_rows = snap.rows_for_hash(&Value::from("a"));
        assert_eq!(a_rows.len(), 3);
        let sorts: Vec<i64> = a_rows.iter().filter_map(|r| r.get_int("RowId")).collect();
        assert_eq!(sorts, vec![0, 1, 2]);
        assert!(snap.rows_for_hash(&Value::from("zzz")).is_empty());
        // Lookups are free: no further ops recorded.
        assert_eq!(db.metrics().scans, after.scans);
        // The snapshot is a copy: later writes do not leak in.
        db.put("t", vmap! { "Key" => "a", "RowId" => 9i64 })
            .unwrap();
        assert_eq!(snap.rows_for_hash(&Value::from("a")).len(), 3);
    }

    #[test]
    fn snapshot_table_of_unknown_table_errors() {
        let db = db_with_table();
        assert!(matches!(
            db.snapshot_table("nope"),
            Err(DbError::TableNotFound(_))
        ));
    }
}

//! A table: an immutable schema plus `P` independently locked partitions.
//!
//! The partition mutex is the simulated atomicity scope — a strict
//! superset of DynamoDB's per-row guarantee, since a row never spans
//! partitions. Single-row operations lock exactly one partition; scans
//! release the lock between pages (driven by [`crate::Database`]) so they
//! are **not** atomic across rows, matching real DynamoDB scans; and
//! cross-table transactions lock exactly the partitions their ops touch,
//! in a deterministic global order (see [`crate::Database::transact_write`]).

use beldi_value::Value;
use parking_lot::{Mutex, MutexGuard};

use crate::key::TableSchema;
use crate::partition::{route, PartitionData};

/// One table: schema (immutable, readable without any lock) and its
/// hash partitions.
#[derive(Debug)]
pub(crate) struct Table {
    pub(crate) schema: TableSchema,
    partitions: Vec<Mutex<PartitionData>>,
}

impl Table {
    /// Creates a table with `partitions` empty partitions.
    pub(crate) fn new(schema: TableSchema, partitions: usize) -> Self {
        assert!(partitions >= 1, "a table needs at least one partition");
        let parts = (0..partitions)
            .map(|_| Mutex::new(PartitionData::new(&schema)))
            .collect();
        Table {
            schema,
            partitions: parts,
        }
    }

    /// Number of partitions.
    pub(crate) fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The partition index a hash-key value routes to.
    pub(crate) fn route(&self, hash_key: &Value) -> usize {
        route(hash_key, self.partitions.len())
    }

    /// Locks partition `p`, reporting whether the acquisition had to wait
    /// for another holder (the per-partition contention signal surfaced in
    /// [`crate::MetricsSnapshot::lock_waits`]).
    pub(crate) fn lock_partition(&self, p: usize) -> (MutexGuard<'_, PartitionData>, bool) {
        let slot = &self.partitions[p];
        match slot.try_lock() {
            Some(guard) => (guard, false),
            None => (slot.lock(), true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::PrimaryKey;
    use beldi_value::vmap;

    fn table(partitions: usize) -> Table {
        Table::new(TableSchema::hash_and_sort("Key", "RowId"), partitions)
    }

    #[test]
    fn rows_of_one_hash_key_share_a_partition() {
        let t = table(8);
        let p = t.route(&Value::from("a"));
        for sort in 0..20i64 {
            let key = PrimaryKey::hash_sort("a", sort);
            assert_eq!(t.route(&key.hash), p, "sort {sort} rerouted");
        }
    }

    #[test]
    fn lock_partition_reports_contention() {
        let t = table(2);
        let (guard, contended) = t.lock_partition(0);
        assert!(!contended, "uncontended lock must not report a wait");
        // The other partition stays free while 0 is held.
        let (other, contended) = t.lock_partition(1);
        assert!(!contended);
        drop(other);
        drop(guard);
    }

    #[test]
    fn partitions_hold_disjoint_rows() {
        let t = table(4);
        let mut total = 0;
        for i in 0..32i64 {
            let item = vmap! { "Key" => format!("k{i}"), "RowId" => 0i64 };
            let key = t.schema.key_of(&item).unwrap();
            let p = t.route(&key.hash);
            let (mut data, _) = t.lock_partition(p);
            data.put_row(key, item, t.schema.max_row_bytes).unwrap();
        }
        for p in 0..t.partition_count() {
            let (data, _) = t.lock_partition(p);
            total += data.rows.len();
        }
        assert_eq!(total, 32, "rows lost or duplicated across partitions");
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = table(0);
    }
}

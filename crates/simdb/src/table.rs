//! In-memory table storage with secondary-index maintenance.
//!
//! A table's data sits behind a single mutex; every mutation happens under
//! it, which is what makes a row update *atomic* (the table mutex is the
//! simulated atomicity scope — per-row serialization, exactly DynamoDB's
//! guarantee, just coarser-grained on the inside). Scans deliberately
//! release the lock between pages (driven by [`crate::Database`]) so they
//! are **not** atomic across rows, matching real DynamoDB scans.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use beldi_value::{SizeOf, Value};

use crate::error::{DbError, DbResult};
use crate::key::{PrimaryKey, TableSchema};

/// The mutable state of one table (rows + indexes), always accessed under
/// the owning table's lock.
#[derive(Debug)]
pub(crate) struct TableData {
    pub(crate) schema: TableSchema,
    pub(crate) rows: BTreeMap<PrimaryKey, Value>,
    /// index attribute name -> indexed value -> set of row keys.
    pub(crate) indexes: HashMap<String, BTreeMap<Value, BTreeSet<PrimaryKey>>>,
}

impl TableData {
    pub(crate) fn new(schema: TableSchema) -> Self {
        let mut indexes = HashMap::new();
        for attr in &schema.index_attrs {
            indexes.insert(attr.clone(), BTreeMap::new());
        }
        TableData {
            schema,
            rows: BTreeMap::new(),
            indexes,
        }
    }

    /// Inserts or replaces a full row, enforcing the size limit and
    /// maintaining indexes. Returns the stored size in bytes.
    pub(crate) fn put_row(&mut self, item: Value) -> DbResult<usize> {
        let key = self.schema.key_of(&item)?;
        let size = item.size_bytes();
        if size > self.schema.max_row_bytes {
            return Err(DbError::RowTooLarge {
                size,
                limit: self.schema.max_row_bytes,
            });
        }
        if let Some(old) = self.rows.get(&key) {
            let old = old.clone();
            self.unindex_row(&key, &old);
        }
        self.index_row(&key, &item);
        self.rows.insert(key, item);
        Ok(size)
    }

    /// Removes a row, maintaining indexes. Returns the removed row.
    pub(crate) fn remove_row(&mut self, key: &PrimaryKey) -> Option<Value> {
        let row = self.rows.remove(key)?;
        self.unindex_row(key, &row);
        Some(row)
    }

    /// Re-checks the size limit and re-indexes after an in-place update.
    ///
    /// The caller mutated a clone; this installs it if it fits.
    pub(crate) fn replace_row(&mut self, key: PrimaryKey, new_row: Value) -> DbResult<usize> {
        let size = new_row.size_bytes();
        if size > self.schema.max_row_bytes {
            return Err(DbError::RowTooLarge {
                size,
                limit: self.schema.max_row_bytes,
            });
        }
        if let Some(old) = self.rows.get(&key) {
            let old = old.clone();
            self.unindex_row(&key, &old);
        }
        self.index_row(&key, &new_row);
        self.rows.insert(key, new_row);
        Ok(size)
    }

    fn index_row(&mut self, key: &PrimaryKey, row: &Value) {
        for (attr, index) in self.indexes.iter_mut() {
            if let Some(v) = row.get_attr(attr) {
                index.entry(v.clone()).or_default().insert(key.clone());
            }
        }
    }

    fn unindex_row(&mut self, key: &PrimaryKey, row: &Value) {
        for (attr, index) in self.indexes.iter_mut() {
            if let Some(v) = row.get_attr(attr) {
                if let Some(set) = index.get_mut(v) {
                    set.remove(key);
                    if set.is_empty() {
                        index.remove(v);
                    }
                }
            }
        }
    }

    /// Looks up row keys via a secondary index.
    pub(crate) fn index_lookup(&self, attr: &str, value: &Value) -> DbResult<Vec<PrimaryKey>> {
        let index = self
            .indexes
            .get(attr)
            .ok_or_else(|| DbError::IndexNotFound(attr.to_owned()))?;
        Ok(index
            .get(value)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default())
    }

    /// Returns the distinct hash-key values present in the table.
    ///
    /// Used by the garbage collector's `getAllDataKeys` step (paper
    /// Fig. 10).
    pub(crate) fn distinct_hash_keys(&self) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        for key in self.rows.keys() {
            if out.last() != Some(&key.hash) {
                out.push(key.hash.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beldi_value::vmap;

    fn schema() -> TableSchema {
        TableSchema::hash_and_sort("Key", "RowId")
            .with_index("Done")
            .with_max_row_bytes(200)
    }

    fn row(k: &str, r: i64, done: bool) -> Value {
        vmap! { "Key" => k, "RowId" => r, "Done" => done }
    }

    #[test]
    fn put_get_remove() {
        let mut t = TableData::new(schema());
        t.put_row(row("a", 0, false)).unwrap();
        let k = PrimaryKey::hash_sort("a", 0i64);
        assert!(t.rows.contains_key(&k));
        let removed = t.remove_row(&k).unwrap();
        assert_eq!(removed.get_str("Key"), Some("a"));
        assert!(t.rows.is_empty());
    }

    #[test]
    fn size_limit_enforced() {
        let mut t = TableData::new(schema());
        let big = vmap! { "Key" => "a", "RowId" => 0i64, "V" => "x".repeat(500) };
        assert!(matches!(t.put_row(big), Err(DbError::RowTooLarge { .. })));
    }

    #[test]
    fn index_tracks_puts_updates_and_removes() {
        let mut t = TableData::new(schema());
        t.put_row(row("a", 0, false)).unwrap();
        t.put_row(row("b", 0, false)).unwrap();
        let unfinished = t.index_lookup("Done", &Value::Bool(false)).unwrap();
        assert_eq!(unfinished.len(), 2);

        // Flip one to done via replace.
        let k = PrimaryKey::hash_sort("a", 0i64);
        t.replace_row(k.clone(), row("a", 0, true)).unwrap();
        assert_eq!(
            t.index_lookup("Done", &Value::Bool(false)).unwrap().len(),
            1
        );
        assert_eq!(
            t.index_lookup("Done", &Value::Bool(true)).unwrap(),
            vec![k.clone()]
        );

        t.remove_row(&k);
        assert!(t
            .index_lookup("Done", &Value::Bool(true))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_lookup_unknown_index_is_error() {
        let t = TableData::new(schema());
        assert!(matches!(
            t.index_lookup("Nope", &Value::Bool(true)),
            Err(DbError::IndexNotFound(_))
        ));
    }

    #[test]
    fn distinct_hash_keys_deduplicates() {
        let mut t = TableData::new(schema());
        t.put_row(row("a", 0, false)).unwrap();
        t.put_row(row("a", 1, false)).unwrap();
        t.put_row(row("b", 0, false)).unwrap();
        let keys = t.distinct_hash_keys();
        assert_eq!(keys, vec![Value::from("a"), Value::from("b")]);
    }
}

//! A simulated strongly consistent NoSQL database for the Beldi reproduction.
//!
//! Beldi (OSDI 2020) assumes only that SSF storage "supports strong
//! consistency, tolerates faults, supports atomic updates on some atomicity
//! scope (e.g., row, partition), and has a scan operation with the ability
//! to filter results and create projections" (§2.2). This crate provides
//! exactly that contract, modelled after DynamoDB:
//!
//! - **Row-scope atomic conditional updates** ([`Database::update`]): a
//!   condition expression ([`beldi_value::Cond`]) is evaluated and an update
//!   expression ([`beldi_value::Update`]) applied atomically on one row.
//! - **Query and scan with filter + projection** ([`Database::query`],
//!   [`Database::scan_page`]): scans are *paged* and therefore not atomic across
//!   rows — matching DynamoDB, and matching the consistency reasoning Beldi
//!   performs for linked-DAAL traversal (§4.1).
//! - **Row size limits**: the default 400 KB cap is the very constraint the
//!   linked DAAL exists to work around (§4.1).
//! - **Secondary indexes** ([`Database::index_query`]): used by the intent
//!   collector to find unfinished intents and by the invocation callback
//!   handler to locate invoke-log entries by callee id.
//! - **Optional cross-table transactions** ([`Database::transact_write`]):
//!   the comparator the paper benchmarks against the linked DAAL in
//!   Figs. 13, 16, and 25.
//! - **A pluggable latency model** ([`LatencyModel`]) in virtual time, so
//!   benchmarks reproduce the paper's latency *shapes*.
//!
//! The store itself is an in-process map, **hash-partitioned**: every table
//! is split into `P` independently locked partitions (rows routed by their
//! hash-key value, so a row — the DynamoDB atomicity scope — never spans
//! partitions). Single-row operations lock exactly one partition;
//! cross-table transactions lock exactly the partitions their ops touch, in
//! a deterministic global order (no global transaction lock), so disjoint
//! work scales with the partition count. "Fault tolerance" of the storage
//! layer is by construction (the process does not model storage-node
//! failures — neither does the paper, which treats DynamoDB as reliable;
//! *client* (SSF) crashes are injected by `beldi-simfaas`).

mod database;
mod error;
mod key;
mod latency;
mod metrics;
mod partition;
mod scan;
mod snapshot;
mod table;

pub use database::{Database, TableSnapshot, TransactOp};
pub use error::{DbError, DbResult};
pub use key::{PrimaryKey, TableSchema};
pub use latency::{LatencyModel, OpKind};
pub use metrics::{DbMetrics, MetricsSnapshot};
pub use partition::DEFAULT_PARTITIONS;
pub use scan::{Projection, ScanCursor, ScanPage, ScanRequest};
pub use snapshot::{DbSnapshot, RowDiff, SnapshotDiff};

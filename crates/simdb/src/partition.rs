//! Hash partitions: the unit of locking and atomicity inside a table.
//!
//! Beldi's correctness argument needs only *row-scope* atomic conditional
//! updates (§2.2), so the simulated store does not have to serialize a
//! whole table behind one mutex. Each table is split into `P` partitions;
//! a row lives in the partition selected by hashing its hash-key value, so
//! every row of one item's DAAL (same hash key) shares a partition and the
//! per-partition mutex remains a strict superset of the row-scope
//! atomicity DynamoDB guarantees. Secondary indexes and the distinct-key
//! listing are maintained per partition and merged on read.
//!
//! Routing must be deterministic (benchmarks replay fixed op sequences
//! across partition counts) and consistent with [`Value`]'s equality — two
//! keys that compare equal must route identically — so it feeds
//! [`Value::hash`] (which already matches `Eq`, e.g. `Int(1)` vs
//! `Float(1.0)`) into a fixed FNV-1a hasher rather than a randomly keyed
//! std hasher.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use beldi_value::{Fnv1a, SizeOf, Value};

use crate::error::{DbError, DbResult};
use crate::key::{PrimaryKey, TableSchema};

/// Default number of partitions per table.
///
/// Eight is small enough that single-threaded workloads pay no visible
/// cost and large enough that the multi-threaded experiment harnesses stop
/// serializing on storage before they saturate the simulated platform.
pub const DEFAULT_PARTITIONS: usize = 8;

/// Routes a hash-key value to a partition index in `0..partitions`
/// (FNV-1a over the value's content hash — see `beldi_value::Fnv1a`).
pub(crate) fn route(hash_key: &Value, partitions: usize) -> usize {
    if partitions <= 1 {
        return 0;
    }
    (Fnv1a::digest(hash_key) % partitions as u64) as usize
}

/// The mutable state of one partition (rows + index shards), always
/// accessed under the owning partition's lock.
#[derive(Debug)]
pub(crate) struct PartitionData {
    /// Rows of this partition, ordered by `(hash, sort)`.
    pub(crate) rows: BTreeMap<PrimaryKey, Value>,
    /// index attribute name -> indexed value -> set of row keys
    /// (restricted to rows of this partition; readers merge shards).
    indexes: HashMap<String, BTreeMap<Value, BTreeSet<PrimaryKey>>>,
}

impl PartitionData {
    /// Creates an empty partition with one index shard per indexed
    /// attribute of the schema.
    pub(crate) fn new(schema: &TableSchema) -> Self {
        let mut indexes = HashMap::new();
        for attr in &schema.index_attrs {
            indexes.insert(attr.clone(), BTreeMap::new());
        }
        PartitionData {
            rows: BTreeMap::new(),
            indexes,
        }
    }

    /// Inserts or replaces a full row, enforcing the size limit and
    /// maintaining index shards. Returns the stored size in bytes.
    ///
    /// The caller routes and extracts `key` (the schema lives outside the
    /// partition locks).
    pub(crate) fn put_row(
        &mut self,
        key: PrimaryKey,
        item: Value,
        max_row_bytes: usize,
    ) -> DbResult<usize> {
        let size = item.size_bytes();
        if size > max_row_bytes {
            return Err(DbError::RowTooLarge {
                size,
                limit: max_row_bytes,
            });
        }
        // Remove the old row outright instead of cloning it just to
        // unindex: the map entry is about to be replaced anyway.
        if let Some(old) = self.rows.remove(&key) {
            self.unindex_row(&key, &old);
        }
        self.index_row(&key, &item);
        self.rows.insert(key, item);
        Ok(size)
    }

    /// Removes a row, maintaining index shards. Returns the removed row.
    pub(crate) fn remove_row(&mut self, key: &PrimaryKey) -> Option<Value> {
        let row = self.rows.remove(key)?;
        self.unindex_row(key, &row);
        Some(row)
    }

    fn index_row(&mut self, key: &PrimaryKey, row: &Value) {
        for (attr, index) in self.indexes.iter_mut() {
            if let Some(v) = row.get_attr(attr) {
                index.entry(v.clone()).or_default().insert(key.clone());
            }
        }
    }

    fn unindex_row(&mut self, key: &PrimaryKey, row: &Value) {
        for (attr, index) in self.indexes.iter_mut() {
            if let Some(v) = row.get_attr(attr) {
                if let Some(set) = index.get_mut(v) {
                    set.remove(key);
                    if set.is_empty() {
                        index.remove(v);
                    }
                }
            }
        }
    }

    /// Looks up this partition's row keys via a secondary-index shard, in
    /// key order. Readers merge the shards of all partitions.
    pub(crate) fn index_lookup(&self, attr: &str, value: &Value) -> DbResult<Vec<PrimaryKey>> {
        let index = self
            .indexes
            .get(attr)
            .ok_or_else(|| DbError::IndexNotFound(attr.to_owned()))?;
        Ok(index
            .get(value)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default())
    }

    /// Returns the distinct hash-key values present in this partition, in
    /// sorted order. Readers merge (and re-sort) across partitions.
    ///
    /// Used by the garbage collector's `getAllDataKeys` step (paper
    /// Fig. 10).
    pub(crate) fn distinct_hash_keys(&self) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        for key in self.rows.keys() {
            if out.last() != Some(&key.hash) {
                out.push(key.hash.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beldi_value::vmap;

    fn schema() -> TableSchema {
        TableSchema::hash_and_sort("Key", "RowId")
            .with_index("Done")
            .with_max_row_bytes(200)
    }

    fn row(k: &str, r: i64, done: bool) -> Value {
        vmap! { "Key" => k, "RowId" => r, "Done" => done }
    }

    fn put(p: &mut PartitionData, s: &TableSchema, item: Value) -> DbResult<usize> {
        let key = s.key_of(&item)?;
        p.put_row(key, item, s.max_row_bytes)
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for parts in [1usize, 2, 8, 31] {
            for i in 0..100i64 {
                let v = Value::from(format!("k{i}"));
                let a = route(&v, parts);
                assert_eq!(a, route(&v, parts));
                assert!(a < parts);
            }
        }
    }

    #[test]
    fn routing_agrees_with_value_equality() {
        // Int(1) == Float(1.0) under Value's total order; routing must not
        // split them across partitions.
        assert_eq!(
            route(&Value::Int(1), 8),
            route(&Value::Float(1.0), 8),
            "equal keys must route identically"
        );
    }

    #[test]
    fn routing_spreads_keys() {
        let parts = 8;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64i64 {
            seen.insert(route(&Value::from(format!("k{i}")), parts));
        }
        assert!(seen.len() > 1, "all keys landed in one partition");
    }

    #[test]
    fn put_get_remove() {
        let s = schema();
        let mut p = PartitionData::new(&s);
        put(&mut p, &s, row("a", 0, false)).unwrap();
        let k = PrimaryKey::hash_sort("a", 0i64);
        assert!(p.rows.contains_key(&k));
        let removed = p.remove_row(&k).unwrap();
        assert_eq!(removed.get_str("Key"), Some("a"));
        assert!(p.rows.is_empty());
    }

    #[test]
    fn size_limit_enforced_without_mutation() {
        let s = schema();
        let mut p = PartitionData::new(&s);
        put(&mut p, &s, row("a", 0, false)).unwrap();
        let big = vmap! { "Key" => "a", "RowId" => 0i64, "V" => "x".repeat(500) };
        assert!(matches!(
            put(&mut p, &s, big),
            Err(DbError::RowTooLarge { .. })
        ));
        // The oversized put must not have disturbed the existing row or
        // its index entries.
        let k = PrimaryKey::hash_sort("a", 0i64);
        assert!(p.rows.contains_key(&k));
        assert_eq!(p.index_lookup("Done", &Value::Bool(false)).unwrap(), [k]);
    }

    #[test]
    fn index_tracks_puts_updates_and_removes() {
        let s = schema();
        let mut p = PartitionData::new(&s);
        put(&mut p, &s, row("a", 0, false)).unwrap();
        put(&mut p, &s, row("b", 0, false)).unwrap();
        assert_eq!(
            p.index_lookup("Done", &Value::Bool(false)).unwrap().len(),
            2
        );

        // Flip one to done via an overwriting put.
        let k = PrimaryKey::hash_sort("a", 0i64);
        put(&mut p, &s, row("a", 0, true)).unwrap();
        assert_eq!(
            p.index_lookup("Done", &Value::Bool(false)).unwrap().len(),
            1
        );
        assert_eq!(
            p.index_lookup("Done", &Value::Bool(true)).unwrap(),
            vec![k.clone()]
        );

        p.remove_row(&k);
        assert!(p
            .index_lookup("Done", &Value::Bool(true))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_lookup_unknown_index_is_error() {
        let p = PartitionData::new(&schema());
        assert!(matches!(
            p.index_lookup("Nope", &Value::Bool(true)),
            Err(DbError::IndexNotFound(_))
        ));
    }

    #[test]
    fn distinct_hash_keys_deduplicates() {
        let s = schema();
        let mut p = PartitionData::new(&s);
        put(&mut p, &s, row("a", 0, false)).unwrap();
        put(&mut p, &s, row("a", 1, false)).unwrap();
        put(&mut p, &s, row("b", 0, false)).unwrap();
        assert_eq!(
            p.distinct_hash_keys(),
            vec![Value::from("a"), Value::from("b")]
        );
    }
}

//! Virtual-time latency model for database operations.
//!
//! The paper's microbenchmark (Fig. 13) reports DynamoDB-backed operation
//! latencies in the single-digit-to-tens of milliseconds with a heavy tail.
//! To reproduce the latency *shapes*, every database operation sleeps (in
//! virtual time) for a sampled duration: a per-operation base cost, a
//! per-row scan cost, a per-kilobyte transfer cost, and log-normal-ish
//! jitter with an occasional tail spike.
//!
//! The default parameters approximate published DynamoDB figures (reads
//! ≈ 4 ms median, writes ≈ 6 ms, scans ≈ 5 ms + per-row cost). Absolute
//! values are not the point — ratios between baseline/Beldi/cross-table
//! operations are, and those come from *how many* operations each design
//! issues.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use parking_lot::Mutex;

/// The kind of database operation, for latency and metrics accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read (`get`).
    Get,
    /// Unconditional or conditional single-row write (`put`/`update`).
    Write,
    /// Query on a hash key.
    Query,
    /// Full-table scan page.
    Scan,
    /// Cross-table transactional write.
    TransactWrite,
    /// Delete.
    Delete,
}

/// Parameters of the latency model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Base cost of a point read.
    pub get_base: Duration,
    /// Base cost of a single-row write.
    pub write_base: Duration,
    /// Base cost of a query/scan request.
    pub scan_base: Duration,
    /// Additional cost per row returned by query/scan.
    pub scan_per_row: Duration,
    /// Additional cost per KiB transferred (any operation).
    pub per_kib: Duration,
    /// Per-item cost of a cross-table transactional write. DynamoDB's
    /// `TransactWriteItems` runs two-phase internally and bills 2× write
    /// units per item, so this is roughly 2× `write_base`, charged per
    /// item in the batch.
    pub transact_base: Duration,
    /// Multiplicative jitter: sampled uniformly from `[1 - j, 1 + j]`.
    pub jitter: f64,
    /// Probability of a tail spike.
    pub tail_prob: f64,
    /// Multiplier applied on a tail spike.
    pub tail_mult: f64,
}

impl LatencyModel {
    /// DynamoDB-flavoured defaults (virtual time).
    pub fn dynamo() -> Self {
        LatencyModel {
            get_base: Duration::from_micros(3_500),
            write_base: Duration::from_micros(5_000),
            scan_base: Duration::from_micros(4_000),
            scan_per_row: Duration::from_micros(60),
            per_kib: Duration::from_micros(15),
            transact_base: Duration::from_micros(14_000),
            jitter: 0.35,
            tail_prob: 0.01,
            tail_mult: 6.0,
        }
    }

    /// A zero-latency model for unit tests.
    pub fn zero() -> Self {
        LatencyModel {
            get_base: Duration::ZERO,
            write_base: Duration::ZERO,
            scan_base: Duration::ZERO,
            scan_per_row: Duration::ZERO,
            per_kib: Duration::ZERO,
            transact_base: Duration::ZERO,
            jitter: 0.0,
            tail_prob: 0.0,
            tail_mult: 1.0,
        }
    }

    /// Computes the deterministic part of the cost for an operation that
    /// touched `rows` rows and transferred `bytes` bytes.
    pub fn base_cost(&self, op: OpKind, rows: usize, bytes: usize) -> Duration {
        let base = match op {
            OpKind::Get => self.get_base,
            OpKind::Write | OpKind::Delete => self.write_base,
            OpKind::Query | OpKind::Scan => self.scan_base + self.scan_per_row * (rows as u32),
            OpKind::TransactWrite => mul_duration(self.transact_base, rows.max(1) as f64),
        };
        base + mul_duration(self.per_kib, bytes as f64 / 1024.0)
    }
}

fn mul_duration(d: Duration, f: f64) -> Duration {
    Duration::from_nanos((d.as_nanos() as f64 * f) as u64)
}

/// A seeded sampler wrapping a [`LatencyModel`].
pub(crate) struct LatencySampler {
    model: LatencyModel,
    rng: Mutex<SmallRng>,
}

impl LatencySampler {
    pub(crate) fn new(model: LatencyModel, seed: u64) -> Self {
        LatencySampler {
            model,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    pub(crate) fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Samples the virtual-time cost of one operation.
    pub(crate) fn sample(&self, op: OpKind, rows: usize, bytes: usize) -> Duration {
        let base = self.model.base_cost(op, rows, bytes);
        if base.is_zero() {
            return base;
        }
        // beldi-lint: allow(lock-order/raw-lock, the latency-jitter RNG mutex is not
        // a partition lock; it is never held across another acquisition)
        let mut rng = self.rng.lock();
        let jitter = if self.model.jitter > 0.0 {
            1.0 + rng.gen_range(-self.model.jitter..self.model.jitter)
        } else {
            1.0
        };
        let tail = if self.model.tail_prob > 0.0 && rng.gen_bool(self.model.tail_prob) {
            self.model.tail_mult
        } else {
            1.0
        };
        mul_duration(base, jitter * tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_zero() {
        let s = LatencySampler::new(LatencyModel::zero(), 1);
        assert_eq!(s.sample(OpKind::Get, 1, 100), Duration::ZERO);
        assert_eq!(s.sample(OpKind::Scan, 50, 10_000), Duration::ZERO);
    }

    #[test]
    fn scan_cost_grows_with_rows() {
        let m = LatencyModel::dynamo();
        let small = m.base_cost(OpKind::Query, 1, 0);
        let big = m.base_cost(OpKind::Query, 100, 0);
        assert!(big > small);
        assert_eq!(
            big - small,
            m.scan_per_row * 99,
            "per-row cost should be linear"
        );
    }

    #[test]
    fn bytes_add_cost() {
        let m = LatencyModel::dynamo();
        let a = m.base_cost(OpKind::Get, 1, 0);
        let b = m.base_cost(OpKind::Get, 1, 100 * 1024);
        assert!(b > a);
    }

    #[test]
    fn transact_is_pricier_than_write() {
        let m = LatencyModel::dynamo();
        assert!(
            m.base_cost(OpKind::TransactWrite, 1, 0) > m.base_cost(OpKind::Write, 1, 0),
            "cross-table txn must cost more than a plain write"
        );
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let m = LatencyModel::dynamo();
        let s = LatencySampler::new(m.clone(), 42);
        let base = m.base_cost(OpKind::Get, 1, 16);
        for _ in 0..1000 {
            let d = s.sample(OpKind::Get, 1, 16);
            let lo = mul_duration(base, 1.0 - m.jitter - 1e-9);
            let hi = mul_duration(base, (1.0 + m.jitter) * m.tail_mult + 1e-9);
            assert!(d >= lo && d <= hi, "sample {d:?} outside [{lo:?}, {hi:?}]");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = LatencySampler::new(LatencyModel::dynamo(), 7);
        let b = LatencySampler::new(LatencyModel::dynamo(), 7);
        for _ in 0..32 {
            assert_eq!(
                a.sample(OpKind::Write, 1, 64),
                b.sample(OpKind::Write, 1, 64)
            );
        }
    }
}

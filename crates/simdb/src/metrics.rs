//! Operation counters and byte accounting.
//!
//! §7.3 of the paper reports "other costs": extra bytes stored per
//! operation, network bytes fetched by DAAL scans, and per-operation request
//! counts (each Beldi read issues one extra scan and write, etc.). These
//! metrics make that table reproducible: the database counts every
//! operation and every byte it returns or stores.
//!
//! Since the store is hash-partitioned, the counters also expose *where*
//! the load lands: one lock-acquisition counter per partition index
//! (aggregated across tables) and a tally of contended acquisitions
//! (`lock_waits`), so key skew and partition hot spots are observable in
//! the `costs` harness output.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::latency::OpKind;

/// Monotonic counters maintained by the database.
#[derive(Debug, Default)]
pub struct DbMetrics {
    gets: AtomicU64,
    writes: AtomicU64,
    queries: AtomicU64,
    scans: AtomicU64,
    transact_writes: AtomicU64,
    deletes: AtomicU64,
    cond_failures: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    rows_scanned: AtomicU64,
    lock_waits: AtomicU64,
    /// Lock acquisitions per partition index, aggregated across tables.
    partition_ops: Vec<AtomicU64>,
}

/// A point-in-time copy of [`DbMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Number of point reads.
    pub gets: u64,
    /// Number of single-row writes (put/update), including failed
    /// conditional writes.
    pub writes: u64,
    /// Number of hash-key queries.
    pub queries: u64,
    /// Number of scan pages served.
    pub scans: u64,
    /// Number of cross-table transactional writes.
    pub transact_writes: u64,
    /// Number of deletes.
    pub deletes: u64,
    /// Number of conditional updates whose condition failed.
    pub cond_failures: u64,
    /// Total bytes returned to clients.
    pub bytes_read: u64,
    /// Total bytes written into rows.
    pub bytes_written: u64,
    /// Total rows examined by queries and scans.
    pub rows_scanned: u64,
    /// Partition-lock acquisitions that had to wait for another holder.
    pub lock_waits: u64,
    /// Partition-lock acquisitions per partition index (across tables);
    /// the skew fingerprint of the workload.
    pub partition_ops: Vec<u64>,
}

impl DbMetrics {
    /// Creates zeroed metrics tracking `partitions` partition indices.
    pub fn new(partitions: usize) -> Self {
        DbMetrics {
            partition_ops: (0..partitions).map(|_| AtomicU64::new(0)).collect(),
            ..DbMetrics::default()
        }
    }

    pub(crate) fn record_op(&self, op: OpKind) {
        let ctr = match op {
            OpKind::Get => &self.gets,
            OpKind::Write => &self.writes,
            OpKind::Query => &self.queries,
            OpKind::Scan => &self.scans,
            OpKind::TransactWrite => &self.transact_writes,
            OpKind::Delete => &self.deletes,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cond_failure(&self) {
        self.cond_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read_bytes(&self, n: usize) {
        self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_written_bytes(&self, n: usize) {
        self.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_rows_scanned(&self, n: usize) {
        self.rows_scanned.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one partition-lock acquisition; `waited` marks contention.
    pub(crate) fn record_partition_access(&self, partition: usize, waited: bool) {
        if waited {
            self.lock_waits.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(ctr) = self.partition_ops.get(partition) {
            ctr.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes a snapshot of all counters, stabilized against torn reads.
    ///
    /// The counters are independent relaxed atomics, so a single pass over
    /// them can interleave with a concurrent recorder and return a set
    /// that never existed at any one instant (e.g. a partition-ops entry
    /// from *after* an operation whose kind counter was read *before* it).
    /// The snapshot therefore re-reads until two consecutive passes agree
    /// — a stable double read is a consistent cut. Under sustained
    /// concurrent load the retry budget can run out; the last pass is then
    /// returned as a best effort (measurement windows bracketed by
    /// quiescent points, as the harnesses use, always stabilize).
    pub fn snapshot(&self) -> MetricsSnapshot {
        const STABILIZE_ATTEMPTS: usize = 8;
        let mut prev = self.load_all();
        for _ in 0..STABILIZE_ATTEMPTS {
            let cur = self.load_all();
            if cur == prev {
                return cur;
            }
            prev = cur;
        }
        prev
    }

    /// Atomically zeroes every counter, returning the values swapped out.
    ///
    /// The per-counter swaps are individually atomic (no increment is ever
    /// lost to a concurrent recorder), but the *set* is consistent only at
    /// a quiescent point — same caveat as [`DbMetrics::snapshot`]. Used by
    /// harnesses to start a measurement window after setup/seeding.
    pub fn reset(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            gets: self.gets.swap(0, Ordering::Relaxed),
            writes: self.writes.swap(0, Ordering::Relaxed),
            queries: self.queries.swap(0, Ordering::Relaxed),
            scans: self.scans.swap(0, Ordering::Relaxed),
            transact_writes: self.transact_writes.swap(0, Ordering::Relaxed),
            deletes: self.deletes.swap(0, Ordering::Relaxed),
            cond_failures: self.cond_failures.swap(0, Ordering::Relaxed),
            bytes_read: self.bytes_read.swap(0, Ordering::Relaxed),
            bytes_written: self.bytes_written.swap(0, Ordering::Relaxed),
            rows_scanned: self.rows_scanned.swap(0, Ordering::Relaxed),
            lock_waits: self.lock_waits.swap(0, Ordering::Relaxed),
            partition_ops: self
                .partition_ops
                .iter()
                .map(|c| c.swap(0, Ordering::Relaxed))
                .collect(),
        }
    }

    /// One raw pass over every counter (may be torn; see
    /// [`DbMetrics::snapshot`]).
    fn load_all(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            transact_writes: self.transact_writes.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            cond_failures: self.cond_failures.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            partition_ops: self
                .partition_ops
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl MetricsSnapshot {
    /// Total operation count across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.writes + self.queries + self.scans + self.transact_writes + self.deletes
    }

    /// Difference between two snapshots (`self - earlier`), for measuring an
    /// experiment window.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            gets: self.gets - earlier.gets,
            writes: self.writes - earlier.writes,
            queries: self.queries - earlier.queries,
            scans: self.scans - earlier.scans,
            transact_writes: self.transact_writes - earlier.transact_writes,
            deletes: self.deletes - earlier.deletes,
            cond_failures: self.cond_failures - earlier.cond_failures,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            lock_waits: self.lock_waits - earlier.lock_waits,
            partition_ops: self
                .partition_ops
                .iter()
                .enumerate()
                .map(|(i, v)| v - earlier.partition_ops.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = DbMetrics::new(4);
        m.record_op(OpKind::Get);
        m.record_op(OpKind::Get);
        m.record_op(OpKind::Write);
        m.record_cond_failure();
        m.record_read_bytes(100);
        m.record_written_bytes(50);
        m.record_rows_scanned(7);
        m.record_partition_access(1, false);
        m.record_partition_access(1, true);
        m.record_partition_access(3, false);
        let s = m.snapshot();
        assert_eq!(s.gets, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.cond_failures, 1);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.bytes_written, 50);
        assert_eq!(s.rows_scanned, 7);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.lock_waits, 1);
        assert_eq!(s.partition_ops, vec![0, 2, 0, 1]);
    }

    #[test]
    fn out_of_range_partition_access_is_ignored() {
        let m = DbMetrics::new(2);
        m.record_partition_access(99, false);
        assert_eq!(m.snapshot().partition_ops, vec![0, 0]);
    }

    #[test]
    fn reset_returns_and_zeroes() {
        let m = DbMetrics::new(2);
        m.record_op(OpKind::Get);
        m.record_op(OpKind::Write);
        m.record_partition_access(1, true);
        let taken = m.reset();
        assert_eq!(taken.gets, 1);
        assert_eq!(taken.writes, 1);
        assert_eq!(taken.lock_waits, 1);
        assert_eq!(taken.partition_ops, vec![0, 1]);
        let after = m.snapshot();
        let zeroed = MetricsSnapshot {
            partition_ops: vec![0, 0],
            ..MetricsSnapshot::default()
        };
        assert_eq!(after, zeroed);
        // Recording continues from zero.
        m.record_op(OpKind::Get);
        assert_eq!(m.snapshot().gets, 1);
    }

    #[test]
    fn snapshot_is_monotonic_under_load_and_exact_at_quiescence() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let m = Arc::new(DbMetrics::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    m.record_op(OpKind::Get);
                    m.record_partition_access(i % 4, false);
                    i += 1;
                }
                i as u64
            })
        };
        let mut last = 0u64;
        for _ in 0..200 {
            let s = m.snapshot();
            assert!(s.gets >= last, "snapshot went backwards");
            last = s.gets;
        }
        stop.store(true, Ordering::Relaxed);
        let total = writer.join().unwrap();
        // Quiescent point: the stabilized snapshot is exact and mutually
        // consistent across counters.
        let s = m.snapshot();
        assert_eq!(s.gets, total);
        assert_eq!(s.partition_ops.iter().sum::<u64>(), total);
        assert_eq!(s, m.snapshot());
    }

    #[test]
    fn delta_subtracts() {
        let m = DbMetrics::new(2);
        m.record_op(OpKind::Query);
        m.record_partition_access(0, true);
        let before = m.snapshot();
        m.record_op(OpKind::Query);
        m.record_op(OpKind::Scan);
        m.record_partition_access(0, false);
        m.record_partition_access(1, true);
        let after = m.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.queries, 1);
        assert_eq!(d.scans, 1);
        assert_eq!(d.gets, 0);
        assert_eq!(d.lock_waits, 1);
        assert_eq!(d.partition_ops, vec![1, 1]);
    }
}

//! Partitioned-store integration tests: ordered multi-partition commits
//! under concurrency, partition-count determinism, and scan-cursor
//! coverage.

use std::sync::Arc;

use beldi_simdb::{Database, DbError, PrimaryKey, ScanRequest, TableSchema, TransactOp};
use beldi_value::{vmap, Cond, Update, Value};

/// A tiny deterministic PRNG (xorshift64*), so the stress tests need no
/// external randomness source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn accounts_db(partitions: usize, accounts: usize, balance: i64) -> Arc<Database> {
    let db = Database::for_tests_with_partitions(partitions);
    db.create_table("acct", TableSchema::hash_only("Id"))
        .unwrap();
    db.create_table("audit", TableSchema::hash_only("Id"))
        .unwrap();
    for a in 0..accounts {
        db.put("acct", vmap! { "Id" => format!("a{a}"), "Bal" => balance })
            .unwrap();
    }
    db
}

fn total_balance(db: &Database, accounts: usize) -> i64 {
    (0..accounts)
        .map(|a| {
            db.get("acct", &PrimaryKey::hash(format!("a{a}")), None)
                .unwrap()
                .unwrap()
                .get_int("Bal")
                .unwrap()
        })
        .sum()
}

/// Randomized transfers between accounts spread over every partition:
/// money is conserved (atomicity), no balance goes negative (condition
/// enforcement at the commit point), and the run terminates (no deadlock
/// among concurrent multi-partition lock holders).
#[test]
fn concurrent_transfers_conserve_money_without_deadlock() {
    const ACCOUNTS: usize = 16;
    const BALANCE: i64 = 100;
    const THREADS: u64 = 8;
    const TRANSFERS: u64 = 60;
    for partitions in [1usize, 4, 8] {
        let db = accounts_db(partitions, ACCOUNTS, BALANCE);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = &db;
                s.spawn(move || {
                    let mut rng = Rng(0x9e37_79b9 + t);
                    for _ in 0..TRANSFERS {
                        let src = rng.below(ACCOUNTS as u64);
                        let mut dst = rng.below(ACCOUNTS as u64);
                        if dst == src {
                            dst = (dst + 1) % ACCOUNTS as u64;
                        }
                        let amount = 1 + rng.below(5) as i64;
                        let result = db.transact_write(&[
                            TransactOp::Update {
                                table: "acct".into(),
                                key: PrimaryKey::hash(format!("a{src}")),
                                cond: Cond::ge("Bal", amount),
                                update: Update::new().inc("Bal", -amount),
                            },
                            TransactOp::Update {
                                table: "acct".into(),
                                key: PrimaryKey::hash(format!("a{dst}")),
                                cond: Cond::exists("Id"),
                                update: Update::new().inc("Bal", amount),
                            },
                        ]);
                        match result {
                            Ok(()) | Err(DbError::TransactionCanceled { .. }) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                });
            }
        });
        assert_eq!(
            total_balance(&db, ACCOUNTS),
            ACCOUNTS as i64 * BALANCE,
            "P={partitions}: transfers lost or minted money"
        );
        for a in 0..ACCOUNTS {
            let bal = db
                .get("acct", &PrimaryKey::hash(format!("a{a}")), None)
                .unwrap()
                .unwrap()
                .get_int("Bal")
                .unwrap();
            assert!(bal >= 0, "P={partitions}: a{a} overdrawn to {bal}");
        }
    }
}

/// A transaction whose last condition fails applies none of its earlier
/// ops, even when those ops land in other partitions and race concurrent
/// committers.
#[test]
fn failed_transactions_are_isolated_across_partitions() {
    let db = accounts_db(8, 8, 100);
    std::thread::scope(|s| {
        // Saboteurs: transactions that always cancel on their final op.
        for t in 0..4u64 {
            let db = &db;
            s.spawn(move || {
                let mut rng = Rng(0xdead_beef + t);
                for _ in 0..50 {
                    let a = rng.below(8);
                    let err = db
                        .transact_write(&[
                            TransactOp::Update {
                                table: "acct".into(),
                                key: PrimaryKey::hash(format!("a{a}")),
                                cond: Cond::exists("Id"),
                                update: Update::new().inc("Bal", 1_000),
                            },
                            TransactOp::Put {
                                table: "audit".into(),
                                item: vmap! { "Id" => "marker" },
                                cond: Cond::exists("Id"), // empty row: always false
                            },
                        ])
                        .unwrap_err();
                    assert_eq!(err, DbError::TransactionCanceled { failed_op: 1 });
                }
            });
        }
        // Committers: small legitimate increments.
        for t in 0..4u64 {
            let db = &db;
            s.spawn(move || {
                let mut rng = Rng(0x00c0_ffee + t);
                for _ in 0..50 {
                    let a = rng.below(8);
                    db.transact_write(&[TransactOp::Update {
                        table: "acct".into(),
                        key: PrimaryKey::hash(format!("a{a}")),
                        cond: Cond::exists("Id"),
                        update: Update::new().inc("Bal", 1),
                    }])
                    .unwrap();
                }
            });
        }
    });
    // Exactly the committed increments are visible: 4 threads × 50 ops of
    // +1; no +1000 from a canceled transaction ever landed.
    assert_eq!(total_balance(&db, 8), 8 * 100 + 4 * 50);
    assert!(db
        .get("audit", &PrimaryKey::hash("marker"), None)
        .unwrap()
        .is_none());
}

/// Runs a fixed op sequence and records every observable result.
fn run_fixed_sequence(partitions: usize) -> Vec<String> {
    let db = Database::for_tests_with_partitions(partitions);
    db.create_table("t", TableSchema::hash_and_sort("Key", "RowId"))
        .unwrap();
    db.create_table("ix", TableSchema::hash_only("Id").with_index("Done"))
        .unwrap();
    let mut log: Vec<String> = Vec::new();
    let mut push = |label: &str, r: String| log.push(format!("{label}: {r}"));

    for i in 0..40i64 {
        let r = db.put(
            "t",
            vmap! { "Key" => format!("k{}", i % 10), "RowId" => i / 10, "V" => i },
        );
        push("put", format!("{r:?}"));
    }
    for i in 0..10i64 {
        let key = PrimaryKey::hash_sort(format!("k{i}"), 0i64);
        let r = db.update(
            "t",
            &key,
            &Cond::ge("V", 5i64),
            &Update::new().inc("V", 100),
        );
        push("update", format!("{r:?}"));
        push("get", format!("{:?}", db.get("t", &key, None)));
    }
    let r = db.delete(
        "t",
        &PrimaryKey::hash_sort("k3", 1i64),
        &Cond::exists("Key"),
    );
    push("delete", format!("{r:?}"));
    for i in 0..6i64 {
        let r = db.put(
            "ix",
            vmap! { "Id" => format!("i{i}"), "Done" => i % 2 == 0 },
        );
        push("ixput", format!("{r:?}"));
    }
    let r = db.transact_write(&[
        TransactOp::Update {
            table: "t".into(),
            key: PrimaryKey::hash_sort("k0", 0i64),
            cond: Cond::exists("Key"),
            update: Update::new().set("T", 1i64),
        },
        TransactOp::Put {
            table: "ix".into(),
            item: vmap! { "Id" => "txn", "Done" => false },
            cond: Cond::not_exists("Id"),
        },
    ]);
    push("txn-commit", format!("{r:?}"));
    let r = db.transact_write(&[TransactOp::Update {
        table: "t".into(),
        key: PrimaryKey::hash_sort("k0", 0i64),
        cond: Cond::eq("V", -1i64),
        update: Update::new().set("T", 2i64),
    }]);
    push("txn-cancel", format!("{r:?}"));

    for i in 0..10i64 {
        let rows = db
            .query("t", &Value::from(format!("k{i}")), &ScanRequest::all())
            .unwrap();
        push("query", format!("{rows:?}"));
    }
    push(
        "index",
        format!("{:?}", db.index_query("ix", "Done", &Value::Bool(true))),
    );
    push(
        "distinct",
        format!("{:?}", db.distinct_hash_keys("t").unwrap()),
    );
    // Scan order is partition-major by design, so compare the *sorted*
    // item set: contents must match across partition counts even though
    // page order does not.
    let mut scanned: Vec<String> = db
        .scan_all("t", &ScanRequest::all())
        .unwrap()
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    scanned.sort();
    push("scan-sorted", scanned.join(" | "));
    log
}

/// Partitioning is an internal layout choice: the same op sequence must
/// yield identical observable results at `P = 1` and `P = 8`.
#[test]
fn fixed_sequence_is_partition_count_invariant() {
    let one = run_fixed_sequence(1);
    let eight = run_fixed_sequence(8);
    assert_eq!(one.len(), eight.len());
    for (a, b) in one.iter().zip(eight.iter()) {
        assert_eq!(a, b);
    }
}

/// Paging with the partition-aware cursor visits every row exactly once,
/// for page sizes that do and do not divide the row count.
#[test]
fn scan_cursor_covers_each_row_exactly_once() {
    let db = Database::for_tests_with_partitions(8);
    db.create_table("t", TableSchema::hash_only("Id")).unwrap();
    const ROWS: usize = 100;
    for i in 0..ROWS {
        db.put("t", vmap! { "Id" => format!("k{i:03}") }).unwrap();
    }
    for limit in [1usize, 7, 32, 100] {
        let mut seen: Vec<String> = Vec::new();
        let mut req = ScanRequest::all().with_limit(limit);
        loop {
            let page = db.scan_page("t", &req).unwrap();
            for item in &page.items {
                seen.push(item.get_str("Id").unwrap().to_owned());
            }
            match page.cursor {
                Some(c) => req = req.with_cursor(c),
                None => break,
            }
        }
        assert_eq!(seen.len(), ROWS, "limit {limit}: duplicated or lost rows");
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ROWS, "limit {limit}: duplicate ids");
    }
}

/// Single-row writers racing a multi-partition transaction on the same
/// rows never tear it: the transaction's two writes land atomically.
#[test]
fn single_row_writers_never_observe_torn_transactions() {
    let db = Database::for_tests_with_partitions(8);
    db.create_table("pair", TableSchema::hash_only("Id"))
        .unwrap();
    db.put("pair", vmap! { "Id" => "left", "Gen" => 0i64 })
        .unwrap();
    db.put("pair", vmap! { "Id" => "right", "Gen" => 0i64 })
        .unwrap();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Writer: bumps both generations in one transaction.
        s.spawn(|| {
            for _ in 0..200 {
                db.transact_write(&[
                    TransactOp::Update {
                        table: "pair".into(),
                        key: PrimaryKey::hash("left"),
                        cond: Cond::exists("Id"),
                        update: Update::new().inc("Gen", 1),
                    },
                    TransactOp::Update {
                        table: "pair".into(),
                        key: PrimaryKey::hash("right"),
                        cond: Cond::exists("Id"),
                        update: Update::new().inc("Gen", 1),
                    },
                ])
                .unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        // Reader: commits are atomic, so the only reachable states are
        // (n, n). Reading left first and right later can only see right at
        // an *equal or newer* generation; observing right behind left
        // would mean the reader caught a transaction half-applied.
        s.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let l = db
                    .get("pair", &PrimaryKey::hash("left"), None)
                    .unwrap()
                    .unwrap()
                    .get_int("Gen")
                    .unwrap();
                let r = db
                    .get("pair", &PrimaryKey::hash("right"), None)
                    .unwrap()
                    .unwrap()
                    .get_int("Gen")
                    .unwrap();
                assert!(r >= l, "torn transaction observed: left={l} right={r}");
            }
        });
    });
    let l = db
        .get("pair", &PrimaryKey::hash("left"), None)
        .unwrap()
        .unwrap()
        .get_int("Gen")
        .unwrap();
    let r = db
        .get("pair", &PrimaryKey::hash("right"), None)
        .unwrap()
        .unwrap()
        .get_int("Gen")
        .unwrap();
    assert_eq!((l, r), (200, 200));
}

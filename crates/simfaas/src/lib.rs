//! A simulated serverless (FaaS) platform for the Beldi reproduction.
//!
//! Models the aspects of AWS Lambda the paper depends on (§2.1, §7.2):
//!
//! - **Stateless routing with fresh instance ids**: every invocation gets a
//!   new request id; nothing persists between invocations except what the
//!   function writes to its database.
//! - **Synchronous and asynchronous invocation** ([`Platform::invoke_sync`],
//!   [`Platform::invoke_async`]); callers of a synchronous chain each occupy
//!   a worker, as on Lambda.
//! - **Cold/warm starts**: a per-function pool of warm workers; invocations
//!   that find no idle warm worker pay a cold-start penalty.
//! - **A platform-wide concurrency cap** (AWS: 1,000 concurrent Lambdas per
//!   account) — the saturation bottleneck in the paper's Figs. 14, 15, 26.
//! - **Execution timeouts**: a synchronous caller gives up after the
//!   configured timeout; the stuck worker keeps running (providers expose
//!   no kill switch — the fact Beldi's GC synchrony assumption leans on).
//! - **Crash-restart failure injection** ([`FaultInjector`]): instances can
//!   be crashed at any labelled crash point, deterministically (scripted
//!   plans) or randomly (seeded policy). The paper's exactly-once guarantee
//!   is validated against these crashes; automatic platform retry is *off*,
//!   matching §7.2 ("We turn off automatic Lambda restarts and let Beldi's
//!   intent collectors take care of restarting failed Lambdas").
//! - **Timer triggers** ([`Platform::schedule_timer`]) for intent and
//!   garbage collectors (1-minute resolution on AWS).

mod error;
mod fault;
pub mod labels;
mod metrics;
mod platform;
mod semaphore;

pub use error::{InvokeError, InvokeResult};
pub use fault::{
    silence_crash_backtraces, CrashPlan, CrashSignal, FaultInjector, RandomCrashPolicy,
    StormPolicy, TraceEntry,
};
pub use metrics::{PlatformMetrics, PlatformSnapshot};
pub use platform::{
    FunctionHandler, InvocationCtx, PendingInvoke, Platform, PlatformConfig, SaturationPolicy,
    TimerHandle,
};

//! Crash injection.
//!
//! Beldi's exactly-once guarantee must hold "even if an SSF crashes in the
//! midst of its execution and is restarted by the provider an arbitrary
//! number of times" (§2.2). To validate that, the Beldi library calls
//! [`FaultInjector::crash_point`] at every labelled point around its
//! externally visible effects (before/after each database write, log
//! append, invocation, callback, and intent completion). The injector
//! decides — per scripted plan or seeded random policy — whether the
//! instance dies *right there*, by unwinding with a [`CrashSignal`] panic
//! that the platform catches and reports as [`crate::InvokeError::Crashed`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Panic payload distinguishing an injected crash from a genuine bug.
#[derive(Debug, Clone)]
pub struct CrashSignal {
    /// The crash-point label where the instance died.
    pub point: String,
}

/// Installs a panic hook that silences injected [`CrashSignal`] panics
/// (they are simulated crashes, not bugs) while delegating everything
/// else to the previous hook.
///
/// Demos and long fault-injection runs call this once so their output is
/// not drowned in backtraces; tests generally keep the default hook for
/// diagnosability.
pub fn silence_crash_backtraces() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<CrashSignal>().is_none() {
            previous(info);
        }
    }));
}

/// A scripted crash plan for one instance id.
#[derive(Debug, Clone)]
pub enum CrashPlan {
    /// Crash at the `n`-th crash point the instance passes (0-based),
    /// counting every labelled point in execution order. One-shot: the
    /// plan is consumed when it fires, so the re-executed instance runs on.
    AtOrdinal(usize),
    /// Crash the first time the instance passes the given label. One-shot.
    AtLabel(String),
    /// Crash at the `n`-th occurrence (0-based) of the given label.
    /// One-shot.
    AtLabelOccurrence(String, usize),
}

/// A random crash policy applied to every instance without a scripted plan.
#[derive(Debug, Clone)]
pub struct RandomCrashPolicy {
    /// Probability of dying at each crash point.
    pub prob: f64,
    /// Hard cap on total injected crashes (guarantees workloads finish).
    pub max_crashes: u64,
    /// RNG seed.
    pub seed: u64,
}

struct InstanceState {
    /// Crash points passed so far (across the *current* execution only —
    /// reset on re-execution via [`FaultInjector::instance_started`]).
    ordinal: usize,
    /// Occurrences per label.
    label_counts: HashMap<String, usize>,
}

/// Decides, at every crash point, whether the current instance dies.
pub struct FaultInjector {
    plans: Mutex<HashMap<String, CrashPlan>>,
    states: Mutex<HashMap<String, InstanceState>>,
    random: Mutex<Option<(RandomCrashPolicy, SmallRng)>>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector with no faults configured.
    pub fn new() -> Self {
        FaultInjector {
            plans: Mutex::new(HashMap::new()),
            states: Mutex::new(HashMap::new()),
            random: Mutex::new(None),
            injected: AtomicU64::new(0),
        }
    }

    /// Scripts a crash plan for a specific instance id.
    ///
    /// Applies to the instance's *next* execution that reaches the point;
    /// plans are one-shot so the instance-collector re-execution proceeds.
    pub fn plan(&self, instance_id: impl Into<String>, plan: CrashPlan) {
        self.plans.lock().insert(instance_id.into(), plan);
    }

    /// Installs (or clears) the random crash policy.
    pub fn set_random_policy(&self, policy: Option<RandomCrashPolicy>) {
        *self.random.lock() = policy.map(|p| {
            let rng = SmallRng::seed_from_u64(p.seed);
            (p, rng)
        });
    }

    /// Number of crashes injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Resets per-execution crash-point counters for an instance.
    ///
    /// The platform calls this when an execution (including a re-execution)
    /// begins, so `AtOrdinal`/occurrence plans count points within a single
    /// execution.
    pub fn instance_started(&self, instance_id: &str) {
        self.states.lock().insert(
            instance_id.to_owned(),
            InstanceState {
                ordinal: 0,
                label_counts: HashMap::new(),
            },
        );
    }

    /// Called by the Beldi library at each labelled crash point.
    ///
    /// # Panics
    ///
    /// Panics with a [`CrashSignal`] payload when the instance is scripted
    /// (or randomly chosen) to die here. The platform catches it.
    pub fn crash_point(&self, instance_id: &str, label: &str) {
        let (ordinal, label_count) = {
            let mut states = self.states.lock();
            let st = states
                .entry(instance_id.to_owned())
                .or_insert(InstanceState {
                    ordinal: 0,
                    label_counts: HashMap::new(),
                });
            let ordinal = st.ordinal;
            st.ordinal += 1;
            let c = st.label_counts.entry(label.to_owned()).or_insert(0);
            let label_count = *c;
            *c += 1;
            (ordinal, label_count)
        };

        let should_crash = {
            let mut plans = self.plans.lock();
            let fire = match plans.get(instance_id) {
                Some(CrashPlan::AtOrdinal(n)) => ordinal == *n,
                Some(CrashPlan::AtLabel(l)) => l == label,
                Some(CrashPlan::AtLabelOccurrence(l, n)) => l == label && label_count == *n,
                None => false,
            };
            if fire {
                plans.remove(instance_id);
            }
            fire
        };

        let random_crash = !should_crash && {
            let mut guard = self.random.lock();
            match guard.as_mut() {
                Some((policy, rng))
                    if self.injected.load(Ordering::Relaxed) < policy.max_crashes =>
                {
                    rng.gen_bool(policy.prob)
                }
                _ => false,
            }
        };

        if should_crash || random_crash {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::panic::panic_any(CrashSignal {
                point: format!("{label}#{label_count}@{ordinal}"),
            });
        }
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catches_crash(f: impl FnOnce() + std::panic::UnwindSafe) -> Option<CrashSignal> {
        match std::panic::catch_unwind(f) {
            Ok(()) => None,
            Err(payload) => Some(
                *payload
                    .downcast::<CrashSignal>()
                    .expect("panic payload must be a CrashSignal"),
            ),
        }
    }

    #[test]
    fn no_plan_no_crash() {
        let inj = FaultInjector::new();
        inj.instance_started("i1");
        inj.crash_point("i1", "write:before");
        inj.crash_point("i1", "write:after");
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn at_ordinal_fires_once() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtOrdinal(2));
        inj.instance_started("i1");
        inj.crash_point("i1", "a");
        inj.crash_point("i1", "b");
        let sig = catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "c");
        }))
        .expect("third point must crash");
        assert!(sig.point.starts_with("c#0@2"));
        // Re-execution: plan consumed, no further crash.
        inj.instance_started("i1");
        inj.crash_point("i1", "a");
        inj.crash_point("i1", "b");
        inj.crash_point("i1", "c");
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn at_label_occurrence() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtLabelOccurrence("w".into(), 1));
        inj.instance_started("i1");
        inj.crash_point("i1", "w"); // Occurrence 0: survives.
        let sig = catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "w"); // Occurrence 1: dies.
        }))
        .unwrap();
        assert!(sig.point.starts_with("w#1"));
    }

    #[test]
    fn plans_are_per_instance() {
        let inj = FaultInjector::new();
        inj.plan("victim", CrashPlan::AtLabel("x".into()));
        inj.instance_started("victim");
        inj.instance_started("bystander");
        inj.crash_point("bystander", "x"); // Unaffected.
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("victim", "x");
        }))
        .is_some());
    }

    #[test]
    fn random_policy_respects_cap() {
        let inj = FaultInjector::new();
        inj.set_random_policy(Some(RandomCrashPolicy {
            prob: 1.0,
            max_crashes: 3,
            seed: 1,
        }));
        let mut crashes = 0;
        for i in 0..10 {
            let id = format!("i{i}");
            inj.instance_started(&id);
            if catches_crash(std::panic::AssertUnwindSafe(|| {
                inj.crash_point(&id, "p");
            }))
            .is_some()
            {
                crashes += 1;
            }
        }
        assert_eq!(crashes, 3);
        assert_eq!(inj.injected_count(), 3);
    }

    #[test]
    fn restart_resets_ordinals() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtOrdinal(1));
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // ordinal 0.
        inj.instance_started("i1"); // Restart before reaching ordinal 1.
        inj.crash_point("i1", "a"); // ordinal 0 again — survives...
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "b"); // ...ordinal 1 — dies.
        }))
        .is_some());
    }
}

//! Crash injection.
//!
//! Beldi's exactly-once guarantee must hold "even if an SSF crashes in the
//! midst of its execution and is restarted by the provider an arbitrary
//! number of times" (§2.2). To validate that, the Beldi library calls
//! [`FaultInjector::crash_point`] at every labelled point around its
//! externally visible effects (before/after each database write, log
//! append, invocation, callback, and intent completion). The injector
//! decides — per scripted plan or seeded random policy — whether the
//! instance dies *right there*, by unwinding with a [`CrashSignal`] panic
//! that the platform catches and reports as [`crate::InvokeError::Crashed`].
//!
//! Besides per-instance plans, the injector maintains one **global crash
//! stream**: every crash point, from any instance, is numbered by a
//! monotonically increasing *global step*. A plan installed with
//! [`FaultInjector::set_global_plan`] is evaluated against this stream, so
//! a test can say "crash whatever instance passes the N-th crash point of
//! this whole workload" without knowing instance ids in advance — the
//! primitive the crash-schedule explorer sweeps. [Trace
//! mode](FaultInjector::start_trace) records the stream (one
//! [`TraceEntry`] per point) so a crash-free run enumerates exactly the
//! schedules worth exploring.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Panic payload distinguishing an injected crash from a genuine bug.
#[derive(Debug, Clone)]
pub struct CrashSignal {
    /// The crash-point label where the instance died.
    pub point: String,
}

/// Guards [`silence_crash_backtraces`] against double installation.
static BACKTRACES_SILENCED: AtomicBool = AtomicBool::new(false);

/// Installs a panic hook that silences injected [`CrashSignal`] panics
/// (they are simulated crashes, not bugs) while delegating everything
/// else to the previous hook.
///
/// Idempotent: only the first call installs the hook; repeated calls are
/// no-ops instead of chaining ever-deeper hook wrappers.
///
/// Demos and long fault-injection runs call this so their output is not
/// drowned in backtraces; tests generally keep the default hook for
/// diagnosability.
pub fn silence_crash_backtraces() {
    if BACKTRACES_SILENCED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<CrashSignal>().is_none() {
            previous(info);
        }
    }));
}

/// A scripted crash plan.
///
/// Installed per instance id ([`FaultInjector::plan`]), ordinals and
/// occurrences count that instance's own crash points; installed globally
/// ([`FaultInjector::set_global_plan`]), they count the *global* crash
/// stream across every instance (and "lifetime" equals "ordinal", since
/// the global stream is never reset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashPlan {
    /// Crash at the `n`-th crash point the instance passes (0-based),
    /// counting every labelled point in execution order and resetting on
    /// re-execution. One-shot: the plan is consumed when it fires, so the
    /// re-executed instance runs on.
    AtOrdinal(usize),
    /// Crash the first time the instance passes the given label. One-shot.
    AtLabel(String),
    /// Crash at the `n`-th occurrence (0-based) of the given label.
    /// One-shot.
    AtLabelOccurrence(String, usize),
    /// Crash at the `n`-th crash point of the instance's whole *lifetime*
    /// (0-based), counted across restarts — never reset by
    /// [`FaultInjector::instance_started`]. One-shot.
    AtLifetimeOrdinal(usize),
    /// Scripted multi-crash sequence: crash at each listed lifetime
    /// ordinal in turn (write entries strictly ascending), so one plan
    /// kills the instance several times across successive restarts. An
    /// entry whose exact point was missed (e.g. another plan fired there
    /// first) triggers at the next point reached instead of stalling the
    /// script. The plan is consumed when its last entry fires.
    Script(Vec<usize>),
}

/// A random crash policy applied to every instance without a scripted plan.
#[derive(Debug, Clone)]
pub struct RandomCrashPolicy {
    /// Probability of dying at each crash point.
    pub prob: f64,
    /// Hard cap on total injected crashes (guarantees workloads finish).
    pub max_crashes: u64,
    /// RNG seed.
    pub seed: u64,
}

/// A deterministic, rate-configurable crash storm — the chaos driver's
/// policy for killing live traffic and collector passes at once.
///
/// Unlike [`RandomCrashPolicy`], whose single shared RNG stream makes
/// every decision depend on the global interleaving of crash points, the
/// storm decides each kill by hashing `(seed, instance id, execution
/// generation, label, per-execution label occurrence)` — all quantities
/// local to one execution. With deterministic instance ids and
/// deterministic bodies, the realized crash schedule is a pure function
/// of the workload, not of thread timing, which is what lets the chaos
/// driver assert bit-identical schedules across same-seed runs.
///
/// Two restrictions keep that invariant honest:
///
/// - labels listed in [`crate::labels::WORK_DEPENDENT`] are never killed
///   (their occurrence counts vary with the interleaving);
/// - the execution *generation* (how many times the instance started)
///   feeds the hash, so a killed execution's restart draws fresh
///   decisions instead of dying at the same point forever.
#[derive(Debug, Clone)]
pub struct StormPolicy {
    /// Kill probability at each eligible SSF crash point.
    pub ssf_prob: f64,
    /// Kill probability at each eligible collector (`ic.*` / `gc.*`)
    /// crash point.
    pub collector_prob: f64,
    /// Hard cap on total injected crashes (shared with every other
    /// policy; guarantees workloads finish).
    pub max_crashes: u64,
    /// Hash seed.
    pub seed: u64,
}

impl StormPolicy {
    /// The storm's kill probability for `label`, or `None` when the
    /// label is ineligible (work-dependent).
    fn prob_for(&self, label: &str) -> Option<f64> {
        if crate::labels::WORK_DEPENDENT.contains(&label) {
            return None;
        }
        Some(if label.starts_with("ic.") || label.starts_with("gc.") {
            self.collector_prob
        } else {
            self.ssf_prob
        })
    }

    /// The interleaving-invariant kill decision (see type docs).
    fn kills(&self, instance: &str, generation: u64, label: &str, label_count: usize) -> bool {
        let Some(prob) = self.prob_for(label) else {
            return false;
        };
        if prob <= 0.0 {
            return false;
        }
        // FNV-1a over the decision key; the top 53 bits map uniformly
        // onto [0, 1).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for chunk in [
            instance.as_bytes(),
            b"\x00",
            &generation.to_le_bytes(),
            label.as_bytes(),
            b"\x00",
            &(label_count as u64).to_le_bytes(),
        ] {
            for &b in chunk {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        ((h >> 11) as f64 / (1u64 << 53) as f64) < prob
    }
}

/// One recorded crash-point visit (trace mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Position in the global crash stream (0-based, across all
    /// instances).
    pub step: u64,
    /// The instance that passed the point.
    pub instance: String,
    /// The crash-point label.
    pub label: String,
    /// Whether an injected crash fired here.
    pub crashed: bool,
}

struct InstanceState {
    /// Crash points passed during the *current* execution (reset on
    /// re-execution via [`FaultInjector::instance_started`]).
    ordinal: usize,
    /// Crash points passed across the instance's whole lifetime (never
    /// reset).
    lifetime: usize,
    /// Occurrences per label (reset on re-execution).
    label_counts: HashMap<String, usize>,
    /// Which execution of this instance is running (0-based; bumped by
    /// [`FaultInjector::instance_started`], never reset). Feeds the
    /// [`StormPolicy`] hash so restarts draw fresh decisions.
    generation: u64,
    /// Injected crashes at this instance across its lifetime.
    crashes: u64,
}

/// A plan plus its progress (for [`CrashPlan::Script`]).
struct PlanState {
    plan: CrashPlan,
    /// Next unfired index into a [`CrashPlan::Script`].
    script_pos: usize,
}

impl PlanState {
    fn new(plan: CrashPlan) -> Self {
        PlanState {
            plan,
            script_pos: 0,
        }
    }

    /// Evaluates the plan at one crash point; returns `(fire, consumed)`.
    ///
    /// `ordinal`/`label_count` are per-execution counters, `lifetime` the
    /// across-restarts counter (for the global stream all three coincide
    /// with the global step).
    fn check(
        &mut self,
        ordinal: usize,
        lifetime: usize,
        label: &str,
        label_count: usize,
    ) -> (bool, bool) {
        match &self.plan {
            CrashPlan::AtOrdinal(n) => (ordinal == *n, true),
            CrashPlan::AtLabel(l) => (l == label, true),
            CrashPlan::AtLabelOccurrence(l, n) => (l == label && label_count == *n, true),
            CrashPlan::AtLifetimeOrdinal(n) => (lifetime == *n, true),
            // `<=` so an entry whose exact step was passed while another
            // plan (or the random policy) fired there still triggers at
            // the next point instead of silently stalling the rest of the
            // script; it also makes a non-ascending entry fire immediately
            // rather than never.
            CrashPlan::Script(steps) => match steps.get(self.script_pos) {
                Some(&next) if next <= lifetime => {
                    self.script_pos += 1;
                    (true, self.script_pos >= steps.len())
                }
                _ => (false, false),
            },
        }
    }
}

/// State of the global crash stream.
#[derive(Default)]
struct GlobalState {
    /// Next global step number.
    step: u64,
    /// Label occurrence counts over the global stream.
    label_counts: HashMap<String, usize>,
    /// The global plan, if any.
    plan: Option<PlanState>,
    /// Recorded entries while trace mode is on.
    trace: Option<Vec<TraceEntry>>,
    /// Injected crashes per label ("crash counts by site").
    crash_sites: BTreeMap<String, u64>,
}

/// Decides, at every crash point, whether the current instance dies.
pub struct FaultInjector {
    plans: Mutex<HashMap<String, PlanState>>,
    states: Mutex<HashMap<String, InstanceState>>,
    global: Mutex<GlobalState>,
    random: Mutex<Option<(RandomCrashPolicy, SmallRng)>>,
    storm: Mutex<Option<StormPolicy>>,
    injected: AtomicU64,
    restarts: AtomicU64,
    timeouts: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector with no faults configured.
    pub fn new() -> Self {
        FaultInjector {
            plans: Mutex::new(HashMap::new()),
            states: Mutex::new(HashMap::new()),
            global: Mutex::new(GlobalState::default()),
            random: Mutex::new(None),
            storm: Mutex::new(None),
            injected: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// Kills the calling instance because its execution lease expired
    /// (the platform's `T_max` contract — the bound Beldi's GC safety
    /// argument leans on in §5).
    ///
    /// Bookkeeping mirrors an injected crash — the instance's crash count
    /// and the per-site tally both advance, so recovery tracking treats
    /// the victim like any other casualty — but the `injected` counter is
    /// untouched: a timeout is the platform enforcing its contract, not
    /// the fault policy firing.
    pub fn timeout_kill(&self, instance_id: &str, label: &str) -> ! {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
        if let Some(st) = self.states.lock().get_mut(instance_id) {
            st.crashes += 1;
        }
        *self
            .global
            .lock()
            .crash_sites
            .entry(label.to_owned())
            .or_insert(0) += 1;
        std::panic::panic_any(CrashSignal {
            point: format!("{label}@{instance_id}"),
        });
    }

    /// Number of lease-expiry kills delivered via
    /// [`FaultInjector::timeout_kill`].
    pub fn timeout_count(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Scripts a crash plan for a specific instance id.
    ///
    /// Applies to the instance's *next* execution that reaches the point;
    /// plans are one-shot so the intent-collector re-execution proceeds.
    pub fn plan(&self, instance_id: impl Into<String>, plan: CrashPlan) {
        self.plans
            .lock()
            .insert(instance_id.into(), PlanState::new(plan));
    }

    /// Installs (or clears) the global crash plan, evaluated against the
    /// global crash stream: ordinals count every crash point any instance
    /// passes, in execution order, and are never reset.
    ///
    /// This is the crash-schedule explorer's primitive — "crash whoever
    /// reaches step `n` of this workload", with [`CrashPlan::Script`]
    /// extending it to multi-crash schedules across recoveries.
    pub fn set_global_plan(&self, plan: Option<CrashPlan>) {
        self.global.lock().plan = plan.map(PlanState::new);
    }

    /// Installs (or clears) the random crash policy.
    pub fn set_random_policy(&self, policy: Option<RandomCrashPolicy>) {
        *self.random.lock() = policy.map(|p| {
            let rng = SmallRng::seed_from_u64(p.seed);
            (p, rng)
        });
    }

    /// Installs (or clears) the deterministic crash storm.
    pub fn set_storm_policy(&self, policy: Option<StormPolicy>) {
        *self.storm.lock() = policy;
    }

    /// Number of crashes injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of instance *restarts* observed: [`FaultInjector::instance_started`]
    /// calls for an instance id already seen before.
    pub fn restart_count(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Injected crashes at one instance across its lifetime (zero for
    /// instances never seen or never killed).
    pub fn instance_crashes(&self, instance_id: &str) -> u64 {
        self.states
            .lock()
            .get(instance_id)
            .map(|s| s.crashes)
            .unwrap_or(0)
    }

    /// Injected crashes per crash-point label, sorted by label.
    pub fn crash_sites(&self) -> BTreeMap<String, u64> {
        self.global.lock().crash_sites.clone()
    }

    /// The number of crash points passed so far across every instance
    /// (the length of the global crash stream).
    pub fn global_step(&self) -> u64 {
        self.global.lock().step
    }

    /// Starts (or restarts) trace mode: subsequent crash points are
    /// recorded until [`FaultInjector::take_trace`].
    pub fn start_trace(&self) {
        self.global.lock().trace = Some(Vec::new());
    }

    /// Stops trace mode and returns the recorded entries (empty if trace
    /// mode was never started).
    pub fn take_trace(&self) -> Vec<TraceEntry> {
        self.global.lock().trace.take().unwrap_or_default()
    }

    /// Resets per-execution crash-point counters for an instance.
    ///
    /// The platform calls this when an execution (including a re-execution)
    /// begins, so `AtOrdinal`/occurrence plans count points within a single
    /// execution. The lifetime counter (for
    /// [`CrashPlan::AtLifetimeOrdinal`] and [`CrashPlan::Script`]) is
    /// preserved across restarts.
    pub fn instance_started(&self, instance_id: &str) {
        let mut states = self.states.lock();
        let (lifetime, generation, crashes) = match states.get(instance_id) {
            Some(s) => {
                self.restarts.fetch_add(1, Ordering::Relaxed);
                (s.lifetime, s.generation + 1, s.crashes)
            }
            None => (0, 0, 0),
        };
        states.insert(
            instance_id.to_owned(),
            InstanceState {
                ordinal: 0,
                lifetime,
                label_counts: HashMap::new(),
                generation,
                crashes,
            },
        );
    }

    /// Called by the Beldi library at each labelled crash point.
    ///
    /// # Panics
    ///
    /// Panics with a [`CrashSignal`] payload when the instance is scripted
    /// (per-instance plan, global plan, or random policy) to die here. The
    /// platform catches it.
    pub fn crash_point(&self, instance_id: &str, label: &str) {
        let (ordinal, lifetime, label_count, generation) = {
            let mut states = self.states.lock();
            let st = states
                .entry(instance_id.to_owned())
                .or_insert(InstanceState {
                    ordinal: 0,
                    lifetime: 0,
                    label_counts: HashMap::new(),
                    generation: 0,
                    crashes: 0,
                });
            let ordinal = st.ordinal;
            st.ordinal += 1;
            let lifetime = st.lifetime;
            st.lifetime += 1;
            let c = st.label_counts.entry(label.to_owned()).or_insert(0);
            let label_count = *c;
            *c += 1;
            (ordinal, lifetime, label_count, st.generation)
        };

        let mut should_crash = {
            let mut plans = self.plans.lock();
            let (fire, consumed) = match plans.get_mut(instance_id) {
                Some(ps) => ps.check(ordinal, lifetime, label, label_count),
                None => (false, false),
            };
            if fire && consumed {
                plans.remove(instance_id);
            }
            fire
        };

        // The global stream: assign this point its step number, evaluate
        // the global plan, and record the trace entry. The random policy
        // draws inside the same critical section so the whole decision is
        // a single ordered event in the stream.
        let step = {
            let mut g = self.global.lock();
            let step = g.step;
            g.step += 1;
            let global_count = {
                let c = g.label_counts.entry(label.to_owned()).or_insert(0);
                let n = *c;
                *c += 1;
                n
            };
            if !should_crash {
                let (fire, consumed) = match g.plan.as_mut() {
                    // In the global stream the point's ordinal, lifetime,
                    // and occurrence counters are the stream's own.
                    Some(ps) => ps.check(step as usize, step as usize, label, global_count),
                    None => (false, false),
                };
                if fire && consumed {
                    g.plan = None;
                }
                should_crash |= fire;
            }
            if !should_crash {
                let mut guard = self.random.lock();
                should_crash = match guard.as_mut() {
                    Some((policy, rng))
                        if self.injected.load(Ordering::Relaxed) < policy.max_crashes =>
                    {
                        rng.gen_bool(policy.prob)
                    }
                    _ => false,
                };
            }
            if !should_crash {
                // The storm's hash decision is interleaving-invariant;
                // only the cap check reads shared state (and storms are
                // configured with caps they never reach).
                should_crash = match self.storm.lock().as_ref() {
                    Some(storm) if self.injected.load(Ordering::Relaxed) < storm.max_crashes => {
                        storm.kills(instance_id, generation, label, label_count)
                    }
                    _ => false,
                };
            }
            if should_crash {
                *g.crash_sites.entry(label.to_owned()).or_insert(0) += 1;
            }
            if let Some(trace) = g.trace.as_mut() {
                trace.push(TraceEntry {
                    step,
                    instance: instance_id.to_owned(),
                    label: label.to_owned(),
                    crashed: should_crash,
                });
            }
            step
        };

        if should_crash {
            self.injected.fetch_add(1, Ordering::Relaxed);
            if let Some(st) = self.states.lock().get_mut(instance_id) {
                st.crashes += 1;
            }
            std::panic::panic_any(CrashSignal {
                point: format!("{label}#{label_count}@{ordinal}/g{step}"),
            });
        }
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catches_crash(f: impl FnOnce() + std::panic::UnwindSafe) -> Option<CrashSignal> {
        match std::panic::catch_unwind(f) {
            Ok(()) => None,
            Err(payload) => Some(
                *payload
                    .downcast::<CrashSignal>()
                    .expect("panic payload must be a CrashSignal"),
            ),
        }
    }

    #[test]
    fn no_plan_no_crash() {
        let inj = FaultInjector::new();
        inj.instance_started("i1");
        inj.crash_point("i1", crate::labels::WRITE_BEFORE);
        inj.crash_point("i1", crate::labels::WRITE_AFTER);
        assert_eq!(inj.injected_count(), 0);
        assert_eq!(inj.global_step(), 2);
    }

    #[test]
    fn at_ordinal_fires_once() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtOrdinal(2));
        inj.instance_started("i1");
        inj.crash_point("i1", "a");
        inj.crash_point("i1", "b");
        let sig = catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "c");
        }))
        .expect("third point must crash");
        assert!(sig.point.starts_with("c#0@2"));
        // Re-execution: plan consumed, no further crash.
        inj.instance_started("i1");
        inj.crash_point("i1", "a");
        inj.crash_point("i1", "b");
        inj.crash_point("i1", "c");
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn at_label_occurrence() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtLabelOccurrence("w".into(), 1));
        inj.instance_started("i1");
        inj.crash_point("i1", "w"); // Occurrence 0: survives.
        let sig = catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "w"); // Occurrence 1: dies.
        }))
        .unwrap();
        assert!(sig.point.starts_with("w#1"));
    }

    #[test]
    fn plans_are_per_instance() {
        let inj = FaultInjector::new();
        inj.plan("victim", CrashPlan::AtLabel("x".into()));
        inj.instance_started("victim");
        inj.instance_started("bystander");
        inj.crash_point("bystander", "x"); // Unaffected.
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("victim", "x");
        }))
        .is_some());
    }

    #[test]
    fn random_policy_respects_cap() {
        let inj = FaultInjector::new();
        inj.set_random_policy(Some(RandomCrashPolicy {
            prob: 1.0,
            max_crashes: 3,
            seed: 1,
        }));
        let mut crashes = 0;
        for i in 0..10 {
            let id = format!("i{i}");
            inj.instance_started(&id);
            if catches_crash(std::panic::AssertUnwindSafe(|| {
                inj.crash_point(&id, "p");
            }))
            .is_some()
            {
                crashes += 1;
            }
        }
        assert_eq!(crashes, 3);
        assert_eq!(inj.injected_count(), 3);
    }

    #[test]
    fn restart_resets_ordinals() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtOrdinal(1));
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // ordinal 0.
        inj.instance_started("i1"); // Restart before reaching ordinal 1.
        inj.crash_point("i1", "a"); // ordinal 0 again — survives...
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "b"); // ...ordinal 1 — dies.
        }))
        .is_some());
    }

    #[test]
    fn lifetime_ordinal_survives_restarts() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtLifetimeOrdinal(3));
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // lifetime 0
        inj.crash_point("i1", "b"); // lifetime 1
        inj.instance_started("i1"); // restart resets ordinal, not lifetime
        inj.crash_point("i1", "a"); // lifetime 2
        let sig = catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "b"); // lifetime 3 — dies (ordinal is 1).
        }))
        .unwrap();
        // Per-execution counters reset on restart: this is execution 2's
        // first `b` (occurrence 0, ordinal 1) — only the lifetime count
        // made the plan fire.
        assert!(sig.point.starts_with("b#0@1"), "{}", sig.point);
    }

    #[test]
    fn script_fires_across_restarts_in_order() {
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::Script(vec![1, 4]));
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // lifetime 0
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "b"); // lifetime 1 — first crash.
        }))
        .is_some());
        // Restart: re-runs the same points.
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // lifetime 2
        inj.crash_point("i1", "b"); // lifetime 3
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "c"); // lifetime 4 — second crash.
        }))
        .is_some());
        // Script exhausted: a third restart runs clean.
        inj.instance_started("i1");
        for l in ["a", "b", "c", "d"] {
            inj.crash_point("i1", l);
        }
        assert_eq!(inj.injected_count(), 2);
    }

    #[test]
    fn script_entry_whose_step_was_missed_fires_at_the_next_point() {
        let inj = FaultInjector::new();
        // Per-instance plan fires at global step 1 — exactly where the
        // global script's first entry points. The script must catch up at
        // step 2 instead of stalling forever.
        inj.plan("i1", CrashPlan::AtOrdinal(1));
        inj.set_global_plan(Some(CrashPlan::Script(vec![1, 3])));
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // step 0
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "b"); // step 1 — per-instance plan wins.
        }))
        .is_some());
        inj.instance_started("i1");
        assert!(
            catches_crash(std::panic::AssertUnwindSafe(|| {
                inj.crash_point("i1", "a"); // step 2 — script catches up.
            }))
            .is_some(),
            "missed script entry must fire at the next point"
        );
        inj.instance_started("i1");
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "a"); // step 3 — second entry on time.
        }))
        .is_some());
        assert_eq!(inj.injected_count(), 3);
    }

    #[test]
    fn global_plan_crashes_across_instances() {
        let inj = FaultInjector::new();
        inj.set_global_plan(Some(CrashPlan::AtOrdinal(2)));
        inj.instance_started("i1");
        inj.instance_started("i2");
        inj.crash_point("i1", "a"); // global step 0
        inj.crash_point("i2", "a"); // global step 1
        let sig = catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i2", "b"); // global step 2 — dies.
        }))
        .unwrap();
        assert!(sig.point.ends_with("/g2"), "{}", sig.point);
        // One-shot: the stream continues crash-free.
        inj.crash_point("i1", "b");
        assert_eq!(inj.injected_count(), 1);
        assert_eq!(inj.global_step(), 4);
    }

    #[test]
    fn global_script_schedules_multiple_crashes() {
        let inj = FaultInjector::new();
        inj.set_global_plan(Some(CrashPlan::Script(vec![0, 2])));
        inj.instance_started("i1");
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "a"); // step 0 — dies.
        }))
        .is_some());
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // step 1
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "b"); // step 2 — dies.
        }))
        .is_some());
        inj.instance_started("i1");
        inj.crash_point("i1", "a"); // step 3 — script exhausted.
        assert_eq!(inj.injected_count(), 2);
    }

    #[test]
    fn trace_records_the_global_stream() {
        let inj = FaultInjector::new();
        inj.start_trace();
        inj.instance_started("i1");
        inj.instance_started("i2");
        inj.crash_point("i1", "a");
        inj.crash_point("i2", "b");
        inj.plan("i1", CrashPlan::AtLabel("c".into()));
        let _ = catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "c");
        }));
        let trace = inj.take_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].step, 0);
        assert_eq!(trace[0].instance, "i1");
        assert_eq!(trace[0].label, "a");
        assert!(!trace[0].crashed);
        assert_eq!(trace[2].label, "c");
        assert!(trace[2].crashed);
        // Trace mode is off after take_trace.
        inj.crash_point("i2", "d");
        assert!(inj.take_trace().is_empty());
    }

    #[test]
    fn storm_decisions_are_pure_and_scoped() {
        let storm = StormPolicy {
            ssf_prob: 0.5,
            collector_prob: 0.0,
            max_crashes: 1_000,
            seed: 7,
        };
        // Pure function of the decision key: same inputs, same answer.
        for count in 0..8 {
            assert_eq!(
                storm.kills("i1", 0, crate::labels::WRAPPER_ENTER, count),
                storm.kills("i1", 0, crate::labels::WRAPPER_ENTER, count),
            );
        }
        // The generation feeds the hash, so a restart is not doomed to
        // die at the same point forever: across many generations the
        // decision must flip at least once.
        let flips = (0..64)
            .filter(|&g| {
                storm.kills("i1", g, crate::labels::WRAPPER_ENTER, 0)
                    != storm.kills("i1", g + 1, crate::labels::WRAPPER_ENTER, 0)
            })
            .count();
        assert!(flips > 0, "generation must vary the decision");
        // Work-dependent labels are never killed, even at prob 1.
        let eager = StormPolicy {
            ssf_prob: 1.0,
            collector_prob: 1.0,
            max_crashes: 1_000,
            seed: 7,
        };
        for label in crate::labels::WORK_DEPENDENT {
            assert!(!eager.kills("i1", 0, label, 0), "{label} must be exempt");
        }
        // Collector labels draw from collector_prob, SSF labels from
        // ssf_prob.
        let collectors_only = StormPolicy {
            ssf_prob: 0.0,
            collector_prob: 1.0,
            max_crashes: 1_000,
            seed: 7,
        };
        assert!(collectors_only.kills("f.ic#p0", 0, crate::labels::IC_ENTER, 0));
        assert!(collectors_only.kills("f.gc#p0", 0, crate::labels::GC_ENTER, 0));
        assert!(!collectors_only.kills("i1", 0, crate::labels::WRAPPER_ENTER, 0));
    }

    #[test]
    fn storm_respects_cap_and_counts_sites() {
        let inj = FaultInjector::new();
        inj.set_storm_policy(Some(StormPolicy {
            ssf_prob: 1.0,
            collector_prob: 1.0,
            max_crashes: 2,
            seed: 3,
        }));
        let mut crashes = 0;
        for i in 0..10 {
            let id = format!("i{i}");
            inj.instance_started(&id);
            if catches_crash(std::panic::AssertUnwindSafe(|| {
                inj.crash_point(&id, crate::labels::WRAPPER_ENTER);
            }))
            .is_some()
            {
                crashes += 1;
            }
        }
        assert_eq!(crashes, 2);
        assert_eq!(inj.injected_count(), 2);
        assert_eq!(
            inj.crash_sites().get(crate::labels::WRAPPER_ENTER),
            Some(&2)
        );
        // Both victims record a lifetime crash count of one.
        assert_eq!(inj.instance_crashes("i0"), 1);
        assert_eq!(inj.instance_crashes("i9"), 0);
    }

    #[test]
    fn restart_count_tracks_repeat_starts() {
        let inj = FaultInjector::new();
        inj.instance_started("a");
        inj.instance_started("b");
        assert_eq!(inj.restart_count(), 0);
        inj.instance_started("a");
        inj.instance_started("a");
        assert_eq!(inj.restart_count(), 2);
    }

    #[test]
    fn silence_crash_backtraces_is_idempotent() {
        // Repeated calls must not chain new hooks (the second call is a
        // no-op) — and injected crashes must still unwind normally.
        silence_crash_backtraces();
        silence_crash_backtraces();
        silence_crash_backtraces();
        let inj = FaultInjector::new();
        inj.plan("i1", CrashPlan::AtOrdinal(0));
        inj.instance_started("i1");
        assert!(catches_crash(std::panic::AssertUnwindSafe(|| {
            inj.crash_point("i1", "x");
        }))
        .is_some());
    }
}

//! A counting semaphore with timed acquisition, used for the platform-wide
//! concurrency cap.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A counting semaphore.
pub(crate) struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    pub(crate) fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Acquires a permit, blocking up to `timeout` (real time).
    ///
    /// Returns `false` if the timeout elapsed. A `None` timeout blocks
    /// forever.
    pub(crate) fn acquire(&self, timeout: Option<Duration>) -> bool {
        let mut permits = self.permits.lock();
        match timeout {
            None => {
                while *permits == 0 {
                    self.cv.wait(&mut permits);
                }
            }
            Some(t) => {
                // beldi-lint: allow(determinism/wall-clock, real-time shutdown deadline for a
                // host-side condvar wait; never observed by replayed SSF code)
                let deadline = std::time::Instant::now() + t;
                while *permits == 0 {
                    if self.cv.wait_until(&mut permits, deadline).timed_out() {
                        return false;
                    }
                }
            }
        }
        *permits -= 1;
        true
    }

    /// Tries to acquire without blocking.
    pub(crate) fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits == 0 {
            false
        } else {
            *permits -= 1;
            true
        }
    }

    /// Releases a permit.
    pub(crate) fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.cv.notify_one();
    }

    /// Current available permits (racy; for metrics only).
    #[cfg_attr(not(test), allow(dead_code))] // Exercised by unit tests.
    pub(crate) fn available(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_cycle() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn timed_acquire_times_out() {
        let s = Semaphore::new(0);
        assert!(!s.acquire(Some(Duration::from_millis(10))));
    }

    #[test]
    fn blocked_acquirer_wakes_on_release() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = s.clone();
        let h = std::thread::spawn(move || s2.acquire(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(20));
        s.release();
        assert!(h.join().unwrap());
    }
}

//! A counting semaphore with timed acquisition, used for the platform-wide
//! concurrency cap.

// beldi-lint: allow-file(async-safety/blocking-in-task, the condvar waits here
// serve the thread-per-worker platform path; the executor path parks wakers
// via `park_waiter`/`try_acquire` and never enters the blocking discipline)

use std::collections::VecDeque;
use std::sync::Arc;
use std::task::Waker;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A parked async waiter's waker slot. Cleared (`None`) when the waiter
/// acquires through another path or is dropped, so a release skips it.
pub(crate) type WaiterSlot = Arc<Mutex<Option<Waker>>>;

/// A counting semaphore.
///
/// Two waiting disciplines share the same permit count: blocking waits
/// on a condvar (the thread-per-worker path) and parked `Waker`s (the
/// async executor path). [`Semaphore::release`] first hands the permit
/// visibility to a parked waker if one exists, then notifies the condvar
/// — both waiters re-contend through `try_acquire`-style decrements, so
/// mixing disciplines cannot double-grant a permit.
pub(crate) struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
    waiters: Mutex<VecDeque<WaiterSlot>>,
}

impl Semaphore {
    pub(crate) fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
            waiters: Mutex::new(VecDeque::new()),
        }
    }

    /// Acquires a permit, blocking up to `timeout` (real time).
    ///
    /// Returns `false` if the timeout elapsed. A `None` timeout blocks
    /// forever.
    pub(crate) fn acquire(&self, timeout: Option<Duration>) -> bool {
        let mut permits = self.permits.lock();
        match timeout {
            None => {
                while *permits == 0 {
                    self.cv.wait(&mut permits);
                }
            }
            Some(t) => {
                // beldi-lint: allow(determinism/wall-clock, real-time shutdown deadline for a
                // host-side condvar wait; never observed by replayed SSF code)
                let deadline = std::time::Instant::now() + t;
                while *permits == 0 {
                    if self.cv.wait_until(&mut permits, deadline).timed_out() {
                        return false;
                    }
                }
            }
        }
        *permits -= 1;
        true
    }

    /// Tries to acquire without blocking.
    pub(crate) fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits == 0 {
            false
        } else {
            *permits -= 1;
            true
        }
    }

    /// Parks an async waiter: the next [`Semaphore::release`] wakes it
    /// so it can re-try `try_acquire`. Returns the slot; clearing it
    /// withdraws the waiter.
    pub(crate) fn park_waiter(&self, waker: Waker) -> WaiterSlot {
        let slot: WaiterSlot = Arc::new(Mutex::new(Some(waker)));
        self.waiters.lock().push_back(slot.clone());
        slot
    }

    /// Releases a permit.
    pub(crate) fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        // Wake the oldest live async waiter (skipping withdrawn slots),
        // then the condvar side. Waking outside both locks: the waker
        // may re-enter an executor's scheduler.
        let waker = {
            let mut q = self.waiters.lock();
            loop {
                match q.pop_front() {
                    Some(slot) => {
                        if let Some(w) = slot.lock().take() {
                            break Some(w);
                        }
                    }
                    None => break None,
                }
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
        self.cv.notify_one();
    }

    /// Current available permits (racy; for metrics only).
    #[cfg_attr(not(test), allow(dead_code))] // Exercised by unit tests.
    pub(crate) fn available(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_cycle() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn timed_acquire_times_out() {
        let s = Semaphore::new(0);
        assert!(!s.acquire(Some(Duration::from_millis(10))));
    }

    #[test]
    fn blocked_acquirer_wakes_on_release() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = s.clone();
        let h = std::thread::spawn(move || s2.acquire(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(20));
        s.release();
        assert!(h.join().unwrap());
    }
}

//! The simulated FaaS [`Platform`].

use std::collections::HashMap;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use beldi_simclock::{ScaledClock, SharedClock, SimInstant, Ticker, TickerHandle};
use beldi_value::Value;
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::{InvokeError, InvokeResult};
use crate::fault::{CrashSignal, FaultInjector};
use crate::labels;
use crate::metrics::{PlatformMetrics, PlatformSnapshot};
use crate::semaphore::{Semaphore, WaiterSlot};

/// Context handed to a running function instance.
#[derive(Clone)]
pub struct InvocationCtx {
    /// The fresh id the platform assigned to this execution (AWS "request
    /// id"). Beldi uses it as the instance id of workflow-root SSFs.
    pub request_id: String,
    /// Name the function was invoked under.
    pub function: String,
    /// Handle back to the platform (for nested invocations).
    pub platform: Arc<Platform>,
}

/// A registered function body.
///
/// Returning normally completes the invocation; panicking models a crash
/// (the injector's [`CrashSignal`] or a genuine bug) and surfaces to
/// synchronous callers as [`InvokeError::Crashed`].
pub type FunctionHandler = Arc<dyn Fn(&InvocationCtx, Value) -> Value + Send + Sync>;

/// What to do when the concurrency cap is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationPolicy {
    /// Queue the invocation until a worker slot frees (latency grows at
    /// saturation — the shape in Figs. 14/15/26).
    Queue,
    /// Reject immediately with [`InvokeError::Throttled`] (AWS gateway
    /// behaviour beyond the account limit).
    Reject,
}

/// Platform tuning knobs. Durations are in *virtual* time.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Account-wide concurrent instance cap (AWS: 1,000).
    pub concurrency_limit: usize,
    /// How long a synchronous caller waits before giving up.
    pub invoke_timeout: Duration,
    /// Worker cold-start penalty.
    pub cold_start: Duration,
    /// Warm-start overhead.
    pub warm_start: Duration,
    /// Fixed per-invocation network/dispatch overhead.
    pub invoke_overhead: Duration,
    /// Max idle warm workers retained per function.
    pub warm_pool_per_fn: usize,
    /// Behaviour at the concurrency cap.
    pub saturation: SaturationPolicy,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            concurrency_limit: 1000,
            invoke_timeout: Duration::from_secs(60),
            cold_start: Duration::from_millis(120),
            warm_start: Duration::from_millis(1),
            invoke_overhead: Duration::from_millis(8),
            warm_pool_per_fn: 512,
            saturation: SaturationPolicy::Queue,
        }
    }
}

impl PlatformConfig {
    /// A zero-overhead configuration for unit tests.
    pub fn for_tests() -> Self {
        PlatformConfig {
            concurrency_limit: 10_000,
            invoke_timeout: Duration::from_secs(3600),
            cold_start: Duration::ZERO,
            warm_start: Duration::ZERO,
            invoke_overhead: Duration::ZERO,
            warm_pool_per_fn: 10_000,
            saturation: SaturationPolicy::Queue,
        }
    }
}

struct FunctionEntry {
    handler: FunctionHandler,
    /// Number of idle warm workers for this function.
    warm_idle: Arc<Mutex<usize>>,
}

/// Handle to a timer trigger; the timer stops when this is dropped or
/// stopped.
pub struct TimerHandle {
    inner: Option<TickerHandle>,
}

impl TimerHandle {
    /// Stops the timer.
    pub fn stop(mut self) {
        if let Some(t) = self.inner.take() {
            t.stop();
        }
    }
}

/// The simulated serverless platform.
pub struct Platform {
    functions: RwLock<HashMap<String, FunctionEntry>>,
    clock: SharedClock,
    config: PlatformConfig,
    permits: Semaphore,
    faults: FaultInjector,
    metrics: PlatformMetrics,
    uuid_rng: Mutex<SmallRng>,
    uuid_ctr: AtomicU64,
}

impl Platform {
    /// Creates a platform on the given clock.
    pub fn new(clock: SharedClock, config: PlatformConfig, seed: u64) -> Arc<Self> {
        let permits = Semaphore::new(config.concurrency_limit);
        Arc::new(Platform {
            functions: RwLock::new(HashMap::new()),
            clock,
            config,
            permits,
            faults: FaultInjector::new(),
            metrics: PlatformMetrics::new(),
            uuid_rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            uuid_ctr: AtomicU64::new(0),
        })
    }

    /// Creates a zero-overhead platform on a real-time clock, for tests.
    pub fn for_tests() -> Arc<Self> {
        Platform::new(ScaledClock::shared(1.0), PlatformConfig::for_tests(), 0)
    }

    /// Returns the platform clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Returns the platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Returns the fault injector.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Returns a snapshot of invocation metrics.
    pub fn metrics(&self) -> PlatformSnapshot {
        self.metrics.snapshot()
    }

    /// Generates a fresh unique id (deterministic per platform seed).
    ///
    /// Serves as AWS's "request id" and as Beldi's caller-generated callee
    /// ids (§3.3).
    pub fn new_uuid(&self) -> String {
        let n = self.uuid_ctr.fetch_add(1, Ordering::Relaxed);
        let r: u64 = self.uuid_rng.lock().gen();
        format!("{r:016x}-{n:08x}")
    }

    /// Registers (or replaces) a function under `name`.
    pub fn register(&self, name: impl Into<String>, handler: FunctionHandler) {
        self.functions.write().insert(
            name.into(),
            FunctionEntry {
                handler,
                warm_idle: Arc::new(Mutex::new(0)),
            },
        );
    }

    /// Returns true if a function is registered under `name`.
    pub fn has_function(&self, name: &str) -> bool {
        self.functions.read().contains_key(name)
    }

    /// Returns all registered function names, sorted.
    pub fn function_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.functions.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn lookup(&self, name: &str) -> InvokeResult<(FunctionHandler, Arc<Mutex<usize>>)> {
        let functions = self.functions.read();
        let entry = functions
            .get(name)
            .ok_or_else(|| InvokeError::FunctionNotFound(name.to_owned()))?;
        Ok((entry.handler.clone(), entry.warm_idle.clone()))
    }

    /// Waits for a concurrency permit according to the saturation policy.
    fn acquire_permit(&self, deadline: SimInstant) -> InvokeResult<()> {
        if self.permits.try_acquire() {
            return Ok(());
        }
        match self.config.saturation {
            SaturationPolicy::Reject => {
                self.metrics.record_throttle();
                Err(InvokeError::Throttled)
            }
            SaturationPolicy::Queue => {
                // Poll in small virtual-time steps so queueing delay shows
                // up in virtual time regardless of the clock rate.
                loop {
                    if self.permits.acquire(Some(Duration::from_micros(200))) {
                        return Ok(());
                    }
                    if self.clock.now() >= deadline {
                        self.metrics.record_throttle();
                        return Err(InvokeError::Throttled);
                    }
                }
            }
        }
    }

    /// Invokes a function synchronously, returning its result.
    ///
    /// The caller blocks (up to the configured timeout in virtual time);
    /// the instance runs on its own worker thread. A panic inside the
    /// handler — including injected [`CrashSignal`]s — yields
    /// [`InvokeError::Crashed`].
    pub fn invoke_sync(self: &Arc<Self>, name: &str, payload: Value) -> InvokeResult<Value> {
        let deadline = self.clock.now().plus(self.config.invoke_timeout);
        let rx = self.dispatch(name, payload, deadline)?;
        // Wait for the worker in virtual time.
        loop {
            // beldi-lint: allow(async-safety/blocking-in-task, invoke_sync is
            // the thread-per-worker platform path - callers opt into blocking
            // their own thread; executor tasks go through invoke_async, which
            // parks a waker instead)
            match rx.recv_timeout(Duration::from_micros(200)) {
                Ok(result) => return result,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.clock.now() >= deadline {
                        self.metrics.record_timeout();
                        return Err(InvokeError::Timeout);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Worker vanished without sending: treat as crash.
                    return Err(InvokeError::Crashed("worker-lost".into()));
                }
            }
        }
    }

    /// Invokes a function asynchronously (fire and forget).
    ///
    /// Returns the request id assigned to the execution.
    pub fn invoke_async(self: &Arc<Self>, name: &str, payload: Value) -> InvokeResult<String> {
        let deadline = self.clock.now().plus(self.config.invoke_timeout);
        let (request_id, rx) = self.dispatch_inner(name, payload, deadline)?;
        drop(rx);
        Ok(request_id)
    }

    fn dispatch(
        self: &Arc<Self>,
        name: &str,
        payload: Value,
        deadline: SimInstant,
    ) -> InvokeResult<mpsc::Receiver<InvokeResult<Value>>> {
        self.dispatch_inner(name, payload, deadline)
            .map(|(_, rx)| rx)
    }

    fn dispatch_inner(
        self: &Arc<Self>,
        name: &str,
        payload: Value,
        deadline: SimInstant,
    ) -> InvokeResult<(String, mpsc::Receiver<InvokeResult<Value>>)> {
        let (handler, warm_idle) = self.lookup(name)?;
        self.acquire_permit(deadline)?;
        let (tx, rx) = mpsc::sync_channel::<InvokeResult<Value>>(1);
        let request_id = self.launch_worker(
            name,
            handler,
            warm_idle,
            payload,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        Ok((request_id, rx))
    }

    /// Starts a worker for an invocation whose permit is already held.
    /// The worker runs the handler on its own thread, delivers the
    /// result through `sink`, then returns itself to the warm pool and
    /// frees the permit. Shared by the blocking (mpsc) and async
    /// (waker-completion) delivery paths.
    fn launch_worker(
        self: &Arc<Self>,
        name: &str,
        handler: FunctionHandler,
        warm_idle: Arc<Mutex<usize>>,
        payload: Value,
        sink: Box<dyn FnOnce(InvokeResult<Value>) + Send>,
    ) -> String {
        // Cold or warm start?
        let cold = {
            let mut idle = warm_idle.lock();
            if *idle > 0 {
                *idle -= 1;
                false
            } else {
                true
            }
        };

        let request_id = self.new_uuid();
        let ctx = InvocationCtx {
            request_id: request_id.clone(),
            function: name.to_owned(),
            platform: self.clone(),
        };
        let platform = self.clone();
        let fn_name = name.to_owned();
        let startup = self.config.invoke_overhead
            + if cold {
                self.config.cold_start
            } else {
                self.config.warm_start
            };
        let warm_cap = self.config.warm_pool_per_fn;
        self.metrics.start(cold);
        std::thread::Builder::new()
            .name(format!("ssf-{fn_name}"))
            .spawn(move || {
                platform.clock.sleep(startup);
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    // The worker booted (startup delay paid) but may die
                    // before the handler runs: the permit is still freed
                    // below and the caller sees `Crashed`, so recovery
                    // must re-run the intent from scratch.
                    platform
                        .faults
                        .crash_point(&ctx.request_id, labels::WORKER_PRE_HANDLER);
                    (handler)(&ctx, payload)
                }));
                match result {
                    Ok(value) => {
                        platform.metrics.finish_ok();
                        sink(Ok(value));
                    }
                    Err(panic) => {
                        platform.metrics.finish_crash();
                        let msg = describe_panic(panic);
                        sink(Err(InvokeError::Crashed(msg)));
                    }
                }
                // Return the worker to the warm pool and free the permit.
                {
                    let mut idle = warm_idle.lock();
                    if *idle < warm_cap {
                        *idle += 1;
                    }
                }
                platform.permits.release();
            })
            .expect("spawn worker thread");
        request_id
    }

    /// Invokes a function without blocking: returns a [`PendingInvoke`]
    /// future that waits for a concurrency permit (parked on a waker,
    /// not a thread) and then for the worker's completion. This is the
    /// async executor's entry point — ten thousand pending invocations
    /// cost ten thousand parked tasks, not ten thousand blocked threads.
    ///
    /// Unlike [`Platform::invoke_sync`] there is no caller-side timeout:
    /// queued invocations wait for a permit indefinitely (the platform
    /// `T_max` execution lease bounds runaway workers instead). Under
    /// [`SaturationPolicy::Reject`] the future resolves to
    /// [`InvokeError::Throttled`] immediately when no permit is free.
    pub fn invoke_pending(self: &Arc<Self>, name: &str, payload: Value) -> PendingInvoke {
        let state = match self.lookup(name) {
            Ok((handler, warm_idle)) => PendingState::Queued {
                name: name.to_owned(),
                payload: Some(payload),
                handler,
                warm_idle,
                slot: None,
            },
            Err(e) => PendingState::Failed(Some(e)),
        };
        PendingInvoke {
            platform: self.clone(),
            state,
        }
    }

    /// Schedules `function` to be invoked asynchronously every `period`
    /// (virtual time) with the given payload — the timer trigger used for
    /// intent and garbage collectors (§7.2).
    pub fn schedule_timer(
        self: &Arc<Self>,
        function: impl Into<String>,
        period: Duration,
        payload: Value,
    ) -> TimerHandle {
        let platform = self.clone();
        let function = function.into();
        let ticker = Ticker::spawn(self.clock.clone(), period, move || {
            let _ = platform.invoke_async(&function, payload.clone());
        });
        TimerHandle {
            inner: Some(ticker),
        }
    }
}

/// The worker→future completion cell: the worker thread fills `result`
/// and wakes `waker`; the awaiting task takes the result on its next
/// poll.
struct CompletionCell {
    result: Option<InvokeResult<Value>>,
    waker: Option<Waker>,
}

enum PendingState {
    /// Lookup failed at creation; the error surfaces on first poll.
    Failed(Option<InvokeError>),
    /// Waiting for a concurrency permit.
    Queued {
        name: String,
        payload: Option<Value>,
        handler: FunctionHandler,
        warm_idle: Arc<Mutex<usize>>,
        /// Our parked waiter in the semaphore's wake queue, if any.
        slot: Option<WaiterSlot>,
    },
    /// Worker launched; waiting for its completion.
    Running {
        cell: Arc<Mutex<CompletionCell>>,
    },
    Done,
}

/// Future returned by [`Platform::invoke_pending`]; resolves to the
/// invocation's result. See that method for the waiting semantics.
pub struct PendingInvoke {
    platform: Arc<Platform>,
    state: PendingState,
}

impl Future for PendingInvoke {
    type Output = InvokeResult<Value>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        loop {
            match &mut this.state {
                PendingState::Failed(e) => {
                    let e = e.take().expect("PendingInvoke polled after completion");
                    this.state = PendingState::Done;
                    return Poll::Ready(Err(e));
                }
                PendingState::Queued { slot, .. } => {
                    // Any previously parked slot may already have been
                    // consumed by a release (that is why we are being
                    // polled); withdraw it and re-contend fresh.
                    if let Some(old) = slot.take() {
                        *old.lock() = None;
                    }
                    let acquired = this.platform.permits.try_acquire() || {
                        match this.platform.config.saturation {
                            SaturationPolicy::Reject => {
                                this.platform.metrics.record_throttle();
                                this.state = PendingState::Done;
                                return Poll::Ready(Err(InvokeError::Throttled));
                            }
                            SaturationPolicy::Queue => {
                                // Park first, then re-try: closes the
                                // race with a release that found an
                                // empty waiter queue.
                                let parked = this.platform.permits.park_waiter(cx.waker().clone());
                                if this.platform.permits.try_acquire() {
                                    *parked.lock() = None;
                                    true
                                } else {
                                    *slot = Some(parked);
                                    return Poll::Pending;
                                }
                            }
                        }
                    };
                    debug_assert!(acquired);
                    let PendingState::Queued {
                        name,
                        payload,
                        handler,
                        warm_idle,
                        ..
                    } = std::mem::replace(&mut this.state, PendingState::Done)
                    else {
                        unreachable!("state checked above");
                    };
                    let cell = Arc::new(Mutex::new(CompletionCell {
                        result: None,
                        waker: None,
                    }));
                    let sink_cell = cell.clone();
                    this.platform.launch_worker(
                        &name,
                        handler,
                        warm_idle,
                        payload.expect("payload present until launch"),
                        Box::new(move |result| {
                            let waker = {
                                let mut c = sink_cell.lock();
                                c.result = Some(result);
                                c.waker.take()
                            };
                            if let Some(w) = waker {
                                w.wake();
                            }
                        }),
                    );
                    this.state = PendingState::Running { cell };
                    // Fall through to the Running arm.
                }
                PendingState::Running { cell } => {
                    let mut c = cell.lock();
                    if let Some(result) = c.result.take() {
                        drop(c);
                        this.state = PendingState::Done;
                        return Poll::Ready(result);
                    }
                    c.waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
                PendingState::Done => panic!("PendingInvoke polled after completion"),
            }
        }
    }
}

impl Drop for PendingInvoke {
    fn drop(&mut self) {
        // Withdraw a parked waiter so a release does not wake a corpse.
        if let PendingState::Queued {
            slot: Some(slot), ..
        } = &self.state
        {
            *slot.lock() = None;
        }
    }
}

fn describe_panic(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(sig) = panic.downcast_ref::<CrashSignal>() {
        sig.point.clone()
    } else if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <opaque>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;
    use beldi_value::vmap;
    use std::sync::atomic::AtomicUsize;

    fn echo_handler() -> FunctionHandler {
        Arc::new(|_ctx, payload| payload)
    }

    #[test]
    fn sync_invoke_returns_result() {
        let p = Platform::for_tests();
        p.register("echo", echo_handler());
        let out = p.invoke_sync("echo", vmap! { "x" => 42i64 }).unwrap();
        assert_eq!(out.get_int("x"), Some(42));
        let m = p.metrics();
        assert_eq!(m.invocations, 1);
        assert_eq!(m.completions, 1);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let p = Platform::for_tests();
        assert!(matches!(
            p.invoke_sync("nope", Value::Null),
            Err(InvokeError::FunctionNotFound(_))
        ));
    }

    #[test]
    fn request_ids_are_unique() {
        let p = Platform::for_tests();
        let ids: std::collections::HashSet<String> = (0..1000).map(|_| p.new_uuid()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn handler_panic_surfaces_as_crash() {
        let p = Platform::for_tests();
        p.register(
            "boom",
            Arc::new(|_ctx: &InvocationCtx, _payload: Value| -> Value {
                panic!("kaboom");
            }),
        );
        let err = p.invoke_sync("boom", Value::Null).unwrap_err();
        assert!(matches!(err, InvokeError::Crashed(ref m) if m.contains("kaboom")));
        assert_eq!(p.metrics().crashes, 1);
    }

    #[test]
    fn injected_crash_surfaces_with_point_label() {
        let p = Platform::for_tests();
        let p2 = p.clone();
        p.register(
            "flaky",
            Arc::new(move |ctx: &InvocationCtx, _| -> Value {
                p2.faults().instance_started(&ctx.request_id);
                p2.faults()
                    .crash_point(&ctx.request_id, labels::WRITE_AFTER);
                Value::from("survived")
            }),
        );
        // No plan: survives.
        assert_eq!(
            p.invoke_sync("flaky", Value::Null).unwrap(),
            Value::from("survived")
        );
        // We don't know the next request id in advance, so install a
        // global label-targeted plan (a blanket random policy would fire
        // at `worker.pre_handler` before the handler's own probe).
        p.faults()
            .set_global_plan(Some(crate::CrashPlan::AtLabel(labels::WRITE_AFTER.into())));
        let err = p.invoke_sync("flaky", Value::Null).unwrap_err();
        assert!(matches!(err, InvokeError::Crashed(ref pt) if pt.contains(labels::WRITE_AFTER)));
        // One-shot plan consumed: next call survives.
        assert!(p.invoke_sync("flaky", Value::Null).is_ok());
    }

    #[test]
    fn worker_pre_handler_crash_frees_permit() {
        let p = Platform::for_tests();
        let entered = Arc::new(AtomicU64::new(0));
        let entered2 = entered.clone();
        p.register(
            "victim",
            Arc::new(move |_ctx: &InvocationCtx, _| -> Value {
                entered2.fetch_add(1, Ordering::SeqCst);
                Value::from("ran")
            }),
        );
        p.faults().set_random_policy(Some(crate::RandomCrashPolicy {
            prob: 1.0,
            max_crashes: 1,
            seed: 7,
        }));
        // The worker dies at `worker.pre_handler`: the handler never runs,
        // the caller sees `Crashed` naming the label, and the permit is
        // freed so the next invocation still gets a worker.
        let err = p.invoke_sync("victim", Value::Null).unwrap_err();
        assert!(
            matches!(err, InvokeError::Crashed(ref pt) if pt.contains(labels::WORKER_PRE_HANDLER))
        );
        assert_eq!(entered.load(Ordering::SeqCst), 0);
        assert_eq!(
            p.invoke_sync("victim", Value::Null).unwrap(),
            Value::from("ran")
        );
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_sync_invocations() {
        let p = Platform::for_tests();
        p.register("inner", echo_handler());
        p.register(
            "outer",
            Arc::new(|ctx: &InvocationCtx, payload: Value| {
                ctx.platform
                    .invoke_sync("inner", payload)
                    .expect("inner must succeed")
            }),
        );
        let out = p.invoke_sync("outer", vmap! { "v" => 7i64 }).unwrap();
        assert_eq!(out.get_int("v"), Some(7));
        assert_eq!(p.metrics().invocations, 2);
    }

    #[test]
    fn async_invoke_runs_eventually() {
        let p = Platform::for_tests();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        p.register(
            "bump",
            Arc::new(move |_ctx: &InvocationCtx, _| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Value::Null
            }),
        );
        let rid = p.invoke_async("bump", Value::Null).unwrap();
        assert!(!rid.is_empty());
        for _ in 0..100 {
            if hits.load(Ordering::SeqCst) == 1 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("async invocation never ran");
    }

    #[test]
    fn concurrency_cap_rejects_when_policy_is_reject() {
        let mut cfg = PlatformConfig::for_tests();
        cfg.concurrency_limit = 1;
        cfg.saturation = SaturationPolicy::Reject;
        let p = Platform::new(ScaledClock::shared(1.0), cfg, 0);
        let (tx, rx) = mpsc::sync_channel::<()>(0);
        let rx = Arc::new(Mutex::new(rx));
        let rx2 = rx.clone();
        p.register(
            "slow",
            Arc::new(move |_ctx: &InvocationCtx, _| {
                // Block until the test releases us.
                let _ = rx2.lock().recv();
                Value::Null
            }),
        );
        let p2 = p.clone();
        let h = std::thread::spawn(move || p2.invoke_sync("slow", Value::Null));
        // Wait for the first invocation to hold the only permit.
        for _ in 0..200 {
            if p.metrics().active == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            p.invoke_sync("slow", Value::Null),
            Err(InvokeError::Throttled)
        );
        tx.send(()).unwrap();
        h.join().unwrap().unwrap();
        assert_eq!(p.metrics().throttles, 1);
    }

    #[test]
    fn warm_pool_reduces_cold_starts() {
        let p = Platform::for_tests();
        p.register("echo", echo_handler());
        p.invoke_sync("echo", Value::Null).unwrap();
        p.invoke_sync("echo", Value::Null).unwrap();
        p.invoke_sync("echo", Value::Null).unwrap();
        let m = p.metrics();
        assert_eq!(m.cold_starts, 1, "only the first start is cold");
        assert_eq!(m.warm_starts, 2);
    }

    #[test]
    fn pending_invoke_resolves_on_executor() {
        let p = Platform::for_tests();
        p.register("echo", echo_handler());
        let rt = beldi_runtime::Executor::new(p.clock().clone(), 1);
        let fut = p.invoke_pending("echo", vmap! { "x" => 5i64 });
        let out = rt.block_on(fut).unwrap();
        assert_eq!(out.get_int("x"), Some(5));
    }

    #[test]
    fn pending_invoke_unknown_function_fails_fast() {
        let p = Platform::for_tests();
        let rt = beldi_runtime::Executor::new(p.clock().clone(), 1);
        let err = rt
            .block_on(p.invoke_pending("nope", Value::Null))
            .unwrap_err();
        assert!(matches!(err, InvokeError::FunctionNotFound(_)));
    }

    #[test]
    fn pending_invoke_crash_surfaces() {
        let p = Platform::for_tests();
        p.register(
            "boom",
            Arc::new(|_ctx: &InvocationCtx, _| -> Value { panic!("kapow") }),
        );
        let rt = beldi_runtime::Executor::new(p.clock().clone(), 1);
        let err = rt
            .block_on(p.invoke_pending("boom", Value::Null))
            .unwrap_err();
        assert!(matches!(err, InvokeError::Crashed(ref m) if m.contains("kapow")));
    }

    #[test]
    fn pending_invokes_queue_past_the_concurrency_cap() {
        // 50 concurrent invocations through 4 permits: every pending
        // future must still resolve (parked on wakers, not threads).
        let mut cfg = PlatformConfig::for_tests();
        cfg.concurrency_limit = 4;
        let p = Platform::new(ScaledClock::shared(1000.0), cfg, 0);
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        p.register(
            "work",
            Arc::new(move |_ctx: &InvocationCtx, v| {
                hits2.fetch_add(1, Ordering::SeqCst);
                v
            }),
        );
        let rt = beldi_runtime::Executor::new(p.clock().clone(), 9);
        let handles: Vec<_> = (0..50)
            .map(|i| {
                let fut = p.invoke_pending("work", Value::Int(i));
                rt.spawn(async move { fut.await.unwrap() })
            })
            .collect();
        rt.run();
        assert_eq!(hits.load(Ordering::SeqCst), 50);
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.take_result(), Some(Value::Int(i as i64)));
        }
    }

    #[test]
    fn pending_invoke_reject_policy_throttles() {
        let mut cfg = PlatformConfig::for_tests();
        cfg.concurrency_limit = 0;
        cfg.saturation = SaturationPolicy::Reject;
        let p = Platform::new(ScaledClock::shared(1.0), cfg, 0);
        p.register("echo", echo_handler());
        let rt = beldi_runtime::Executor::new(p.clock().clone(), 2);
        let err = rt
            .block_on(p.invoke_pending("echo", Value::Null))
            .unwrap_err();
        assert!(matches!(err, InvokeError::Throttled));
        assert_eq!(p.metrics().throttles, 1);
    }

    #[test]
    fn timer_trigger_fires() {
        let clock = ScaledClock::shared(1000.0);
        let p = Platform::new(clock, PlatformConfig::for_tests(), 0);
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        p.register(
            "tick",
            Arc::new(move |_ctx: &InvocationCtx, _| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Value::Null
            }),
        );
        let timer = p.schedule_timer("tick", Duration::from_secs(60), Value::Null);
        // 5 virtual minutes = 300 ms real.
        std::thread::sleep(Duration::from_millis(400));
        timer.stop();
        let n = hits.load(Ordering::SeqCst);
        assert!(n >= 2, "timer should have fired repeatedly, got {n}");
    }
}

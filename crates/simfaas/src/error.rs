//! Invocation error types.

use std::fmt;

/// Result alias for invocations.
pub type InvokeResult<T> = Result<T, InvokeError>;

/// Errors surfaced to the caller of an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeError {
    /// No function registered under this name.
    FunctionNotFound(String),
    /// The instance crashed (injected fault or function panic).
    ///
    /// The payload is the crash-point label, or the panic message for a
    /// genuine (non-injected) panic.
    Crashed(String),
    /// The synchronous caller gave up waiting (the worker may still be
    /// running — serverless platforms cannot deliver results late).
    Timeout,
    /// The platform rejected the invocation because the account-wide
    /// concurrency limit was reached (and the saturation policy rejects).
    Throttled,
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::FunctionNotFound(n) => write!(f, "function `{n}` not found"),
            InvokeError::Crashed(p) => write!(f, "instance crashed at `{p}`"),
            InvokeError::Timeout => write!(f, "invocation timed out"),
            InvokeError::Throttled => write!(f, "throttled: concurrency limit reached"),
        }
    }
}

impl std::error::Error for InvokeError {}

//! The registry of crash-point labels.
//!
//! Every label the Beldi library passes to
//! [`crate::FaultInjector::crash_point`] (or to the GC's observation
//! hooks) is declared here, once, as a shared constant. This is the one
//! source of truth three consumers rely on:
//!
//! - the protocol code (`beldi` core) fires probes by constant, so a label
//!   cannot drift between the wrapper, the explorer, and the tests;
//! - tests and the crash-schedule explorer script plans against the same
//!   constants ([`crate::CrashPlan::AtLabel`] with a typo would otherwise
//!   silently explore nothing);
//! - `beldi-lint` parses this file into its label registry and enforces
//!   that labels are unique, well-formed, listed in [`ALL`], and that every
//!   label referenced anywhere in the workspace exists here.
//!
//! Label grammar (checked by `beldi-lint`): dotted step labels
//! `subsystem.step[.substep]` (lower_snake segments), or effect-relative
//! labels `op:before` / `op:after`.
//!
//! # Adding a new crash point
//!
//! 1. Declare the label constant here and add it to [`ALL`].
//! 2. Fire it via the constant at the call site — string literals at
//!    probe sites are a lint violation (`crash-points/label-literal`).
//! 3. If the probe sits under a conditional (a loop over found work, a
//!    success-only branch), add it to [`WORK_DEPENDENT`] — otherwise the
//!    `crash-points/conditional` lint fires, because a probe whose firing
//!    depends on the work found changes the global crash stream between
//!    runs and breaks the explorer's fixed-schedule determinism (the
//!    PR-5 "fixed probe count per pass" rule).

// ---- Function wrapper (§3.2–3.3) ----

/// First point of every wrapped execution, before the intent registers.
pub const WRAPPER_ENTER: &str = "wrapper.enter";
/// After the execution intent is registered (the first external action).
pub const WRAPPER_POST_INTENT: &str = "wrapper.post_intent";
/// Before the result callback to the caller (Fig. 9 ordering).
pub const WRAPPER_PRE_CALLBACK: &str = "wrapper.pre_callback";
/// Between the callback and marking the intent done.
pub const WRAPPER_PRE_DONE: &str = "wrapper.pre_done";
/// After the intent is marked done, before the response returns.
pub const WRAPPER_POST_DONE: &str = "wrapper.post_done";
/// Async callee registration (Fig. 20): after the intent logs, before the
/// confirmation callback.
pub const ASYNCREG_POST_INTENT: &str = "asyncreg.post_intent";

// ---- Logged storage operations (Figs. 5–7, 17–18) ----

/// Entry of a logged read, before the storage read.
pub const READ_ENTER: &str = "read.enter";
/// Before the read-log append (the value is read but not yet logged).
pub const READ_PRE_LOG: &str = "read.pre_log";
/// After this execution won the read-log append. Work-dependent: a replay
/// that loses the first-writer race returns the recorded value instead.
pub const READ_POST_LOG: &str = "read.post_log";
/// Entry of a logged write step, before the atomic execute-and-log.
pub const WRITE_ENTER: &str = "write.enter";
/// After the write step's atomicity scope completed (or replayed).
pub const WRITE_EXIT: &str = "write.exit";

// ---- Linked DAAL internals (§4.1, Fig. 7) ----

/// Entry of the DAAL exactly-once write driver.
pub const DAAL_WRITE_ENTER: &str = "daal.write.enter";
/// Before the case-B apply-and-log conditional update. Work-dependent:
/// fires once per chase round until a conditional update lands.
pub const DAAL_WRITE_PRE_APPLY: &str = "daal.write.pre_apply";
/// After the apply-and-log update succeeded. Work-dependent: success arm.
pub const DAAL_WRITE_POST_APPLY: &str = "daal.write.post_apply";
/// Before logging a false user-condition outcome (case B2).
/// Work-dependent: conditional writes only.
pub const DAAL_WRITE_PRE_LOG_FALSE: &str = "daal.write.pre_log_false";
/// After the false outcome was logged. Work-dependent: success arm.
pub const DAAL_WRITE_POST_LOG_FALSE: &str = "daal.write.post_log_false";
// ---- DAAL write combining (group commit over the tail row) ----
//
// The combiner is opt-in (`BeldiConfig::daal_write_combine`); with it on,
// every plain logged write routes through these points, so the explorer
// can kill a logger before it enqueues, a leader on either side of its
// folded flush, and a leader between flushing and publishing results.

/// A logged write entered the combiner path, before its intent enqueues.
pub const DAAL_COMBINE_ENTER: &str = "daal.combine.enter";
/// The elected leader is about to fold its drained batch into the single
/// conditional write against the tail row. Work-dependent: fires only on
/// batches with at least one non-replay entry.
pub const DAAL_COMBINE_PRE_FLUSH: &str = "daal.combine.pre_flush";
/// The leader's folded flush landed (all entries applied and logged
/// atomically). Work-dependent: success arm.
pub const DAAL_COMBINE_POST_FLUSH: &str = "daal.combine.post_flush";
/// The leader is about to publish per-entry results to parked followers.
/// A crash here strands followers with an applied-but-unannounced batch;
/// they must time out and recover their outcomes via solo replay.
/// Work-dependent: fires once per drained batch a leader processes.
pub const DAAL_COMBINE_PRE_PUBLISH: &str = "daal.combine.pre_publish";
/// A follower parked waiting for its leader's verdict. Work-dependent:
/// fires only when another logger already leads the group.
pub const DAAL_COMBINE_FOLLOWER_WAIT: &str = "daal.combine.follower_wait";

/// Before creating a fresh DAAL row (append step 1).
pub const DAAL_APPEND_PRE_CREATE: &str = "daal.append.pre_create";
/// Between creating the row and linking it (the orphan window).
pub const DAAL_APPEND_POST_CREATE: &str = "daal.append.post_create";
/// After the link attempt (step 2), win or lose.
pub const DAAL_APPEND_POST_LINK: &str = "daal.append.post_link";

// ---- Invocations (Figs. 19–20) ----

/// Before the invoke-log entry that names the callee id.
pub const INVOKE_PRE_ENTRY: &str = "invoke.pre_entry";
/// Before the synchronous call to the callee.
pub const INVOKE_PRE_CALL: &str = "invoke.pre_call";
/// Before the async callee's registration round-trip. Work-dependent: a
/// re-execution whose registration was already confirmed skips it.
pub const INVOKE_PRE_ASYNCREG: &str = "invoke.pre_asyncreg";
/// Before the asynchronous fire of the registered callee.
pub const INVOKE_PRE_ASYNC_CALL: &str = "invoke.pre_async_call";

// ---- Transactions (§6.2) ----

/// Entry of the finalize (commit/abort) protocol.
pub const TXN_PRE_FINALIZE: &str = "txn.pre_finalize";
/// Before flushing one shadow value to its real table (commit only).
/// Work-dependent: once per written shadow entry.
pub const TXN_PRE_FLUSH_ITEM: &str = "txn.pre_flush_item";
/// Before releasing one transactional lock. Work-dependent: once per
/// entry the transaction touched here.
pub const TXN_PRE_RELEASE_ITEM: &str = "txn.pre_release_item";
/// Before propagating the decision to one callee. Work-dependent: once
/// per callee invoked inside the transaction.
pub const TXN_PRE_SIGNAL: &str = "txn.pre_signal";
/// After the finalize protocol completed.
pub const TXN_POST_FINALIZE: &str = "txn.post_finalize";

// ---- Intent collection (§3.3) ----
//
// Like GC below, the three step-boundary labels fire exactly once per
// pass, independent of the work found; the restart probe is the
// work-dependent observation point (once per re-launched intent).

/// IC pass entry, before the `Done = false` index scan.
pub const IC_ENTER: &str = "ic.enter";
/// After the index scan selected this pass's batch.
pub const IC_POST_SCAN: &str = "ic.post_scan";
/// Before one unfinished intent is re-launched. Work-dependent probe.
pub const IC_PRE_RESTART: &str = "ic.pre_restart";
/// IC pass exit.
pub const IC_EXIT: &str = "ic.exit";

// ---- Garbage collection (§5, Fig. 10) ----
//
// The five step-boundary labels fire exactly once per pass, independent
// of the work found, so the explorer's global crash stream stays
// deterministic. The `gc.step*` probes are the fine-grained,
// work-dependent observation points used by interleaving tests.

/// Pass entry (before steps 1–2).
pub const GC_ENTER: &str = "gc.enter";
/// After intents are stamped/classified (steps 1–2).
pub const GC_POST_CLASSIFY: &str = "gc.post_classify";
/// After the recyclable intents' log entries are pruned (step 3).
pub const GC_POST_LOG_PRUNE: &str = "gc.post_log_prune";
/// After DAAL disconnect/delete maintenance (steps 4–5).
pub const GC_POST_DAAL: &str = "gc.post_daal";
/// Pass exit (after step 6 removed the recycled intents).
pub const GC_EXIT: &str = "gc.exit";
/// Before one interior-row unlink (step 4). Work-dependent probe.
pub const GC_STEP4_PRE_UNLINK: &str = "gc.step4.pre_unlink";
/// Before the step-5 freshness re-scan. Work-dependent probe.
pub const GC_STEP5_PRE_RESCAN: &str = "gc.step5.pre_rescan";
/// Before one expired-row delete (step 5). Work-dependent probe.
pub const GC_STEP5_PRE_DELETE: &str = "gc.step5.pre_delete";

// ---- Network front door (DESIGN.md §14) ----
//
// The HTTP front door fires these on the connection thread and catches
// its own `CrashSignal`, dropping the connection the way a crashed
// gateway process would. They bracket the handoff into the executor, so
// storms can lose a request before any intent exists, orphan a running
// workflow whose reply nobody is waiting for, and drop a reply after
// the workflow committed — the three retry cases a client must survive.

/// An invoke request is parsed, before its workflow task spawns on the
/// executor. A crash here loses the request with no intent registered;
/// only a client retry re-submits it.
pub const FRONT_ENTER: &str = "front.enter";
/// The workflow task is live on the executor but the front door dies
/// before hearing back. The workflow still finishes (the IC completes
/// it if its own instance crashes); only the reply is lost.
pub const FRONT_POST_SPAWN: &str = "front.post_spawn";
/// The workflow's result is in hand, before the response bytes are
/// written. A retry under the same instance id must replay the recorded
/// result instead of re-executing.
pub const FRONT_PRE_REPLY: &str = "front.pre_reply";

// ---- Platform dispatch ----

/// A platform worker thread has booted (startup delay paid) but dies
/// before entering the handler. The concurrency permit is still freed
/// and the caller observes `Crashed` with no intent row written by this
/// attempt — recovery must re-run the invocation from scratch. This is
/// the dispatch-handoff gap between `front.post_spawn` /
/// `invoke_async` admission and `wrapper.enter`.
pub const WORKER_PRE_HANDLER: &str = "worker.pre_handler";

// ---- Platform contract enforcement ----

/// The platform killed an instance whose execution lease (`T_max`)
/// expired. Not a probe label — the wrapper checks the lease at every
/// probe and delivers the kill via `FaultInjector::timeout_kill`, which
/// tallies it here in the per-site crash counts. Listed as
/// work-dependent since its firing is inherently timing-driven.
pub const PLATFORM_T_MAX: &str = "platform.t_max";

// ---- Platform-level effect labels ----

/// Before a simulated external write effect; used by platform-level
/// fault-injection tests that need an effect-relative label.
pub const WRITE_BEFORE: &str = "write:before";
/// After a simulated external write effect; the post-effect twin of
/// [`WRITE_BEFORE`].
pub const WRITE_AFTER: &str = "write:after";

/// Every declared crash-point label. `beldi-lint` checks that each label
/// constant above appears here exactly once and that every label
/// referenced by the explorer or the tests resolves into this registry.
pub const ALL: &[&str] = &[
    WRAPPER_ENTER,
    WRAPPER_POST_INTENT,
    WRAPPER_PRE_CALLBACK,
    WRAPPER_PRE_DONE,
    WRAPPER_POST_DONE,
    ASYNCREG_POST_INTENT,
    READ_ENTER,
    READ_PRE_LOG,
    READ_POST_LOG,
    WRITE_ENTER,
    WRITE_EXIT,
    DAAL_WRITE_ENTER,
    DAAL_WRITE_PRE_APPLY,
    DAAL_WRITE_POST_APPLY,
    DAAL_WRITE_PRE_LOG_FALSE,
    DAAL_WRITE_POST_LOG_FALSE,
    DAAL_COMBINE_ENTER,
    DAAL_COMBINE_PRE_FLUSH,
    DAAL_COMBINE_POST_FLUSH,
    DAAL_COMBINE_PRE_PUBLISH,
    DAAL_COMBINE_FOLLOWER_WAIT,
    DAAL_APPEND_PRE_CREATE,
    DAAL_APPEND_POST_CREATE,
    DAAL_APPEND_POST_LINK,
    INVOKE_PRE_ENTRY,
    INVOKE_PRE_CALL,
    INVOKE_PRE_ASYNCREG,
    INVOKE_PRE_ASYNC_CALL,
    TXN_PRE_FINALIZE,
    TXN_PRE_FLUSH_ITEM,
    TXN_PRE_RELEASE_ITEM,
    TXN_PRE_SIGNAL,
    TXN_POST_FINALIZE,
    IC_ENTER,
    IC_POST_SCAN,
    IC_PRE_RESTART,
    IC_EXIT,
    GC_ENTER,
    GC_POST_CLASSIFY,
    GC_POST_LOG_PRUNE,
    GC_POST_DAAL,
    GC_EXIT,
    GC_STEP4_PRE_UNLINK,
    GC_STEP5_PRE_RESCAN,
    GC_STEP5_PRE_DELETE,
    FRONT_ENTER,
    FRONT_POST_SPAWN,
    FRONT_PRE_REPLY,
    WORKER_PRE_HANDLER,
    PLATFORM_T_MAX,
    WRITE_BEFORE,
    WRITE_AFTER,
];

/// Labels whose firing legitimately depends on the work a run finds
/// (loops over found items, success-only branches). Probes firing these
/// may sit under conditionals; every other label must fire
/// unconditionally on its path so the explorer's global crash stream is
/// identical across runs of the same schedule.
pub const WORK_DEPENDENT: &[&str] = &[
    READ_POST_LOG,
    DAAL_WRITE_PRE_APPLY,
    DAAL_WRITE_POST_APPLY,
    DAAL_WRITE_PRE_LOG_FALSE,
    DAAL_WRITE_POST_LOG_FALSE,
    DAAL_COMBINE_PRE_FLUSH,
    DAAL_COMBINE_POST_FLUSH,
    DAAL_COMBINE_PRE_PUBLISH,
    DAAL_COMBINE_FOLLOWER_WAIT,
    INVOKE_PRE_ASYNCREG,
    TXN_PRE_FLUSH_ITEM,
    TXN_PRE_RELEASE_ITEM,
    TXN_PRE_SIGNAL,
    IC_PRE_RESTART,
    GC_STEP4_PRE_UNLINK,
    GC_STEP5_PRE_RESCAN,
    GC_STEP5_PRE_DELETE,
    // Fires with the worker's request id (allocated in dispatch order
    // across racing worker threads), so storm kill decisions keyed on it
    // would be interleaving-dependent — ineligible, like PLATFORM_T_MAX.
    WORKER_PRE_HANDLER,
    PLATFORM_T_MAX,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_labels_are_unique() {
        let set: BTreeSet<&str> = ALL.iter().copied().collect();
        assert_eq!(set.len(), ALL.len(), "duplicate label in ALL");
    }

    #[test]
    fn work_dependent_labels_are_registered() {
        for l in WORK_DEPENDENT {
            assert!(ALL.contains(l), "{l} missing from ALL");
        }
    }

    #[test]
    fn labels_are_well_formed() {
        for l in ALL {
            let ok_dotted = l.split('.').count() >= 2
                && l.split('.').all(|seg| {
                    !seg.is_empty()
                        && seg
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                });
            let ok_effect = matches!(l.split_once(':'), Some((op, side))
                if !op.is_empty() && matches!(side, "before" | "after"));
            assert!(ok_dotted || ok_effect, "malformed label {l}");
        }
    }
}

//! Platform-level invocation metrics.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic counters and gauges maintained by the platform.
#[derive(Debug, Default)]
pub struct PlatformMetrics {
    invocations: AtomicU64,
    completions: AtomicU64,
    crashes: AtomicU64,
    timeouts: AtomicU64,
    throttles: AtomicU64,
    cold_starts: AtomicU64,
    warm_starts: AtomicU64,
    active: AtomicI64,
    peak_active: AtomicI64,
}

/// A point-in-time copy of [`PlatformMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformSnapshot {
    /// Invocations started.
    pub invocations: u64,
    /// Invocations that returned a value.
    pub completions: u64,
    /// Invocations that crashed (injected or panic).
    pub crashes: u64,
    /// Synchronous invocations whose caller timed out.
    pub timeouts: u64,
    /// Invocations rejected for exceeding the concurrency cap.
    pub throttles: u64,
    /// Invocations that paid a cold start.
    pub cold_starts: u64,
    /// Invocations served by a warm worker.
    pub warm_starts: u64,
    /// Currently running instances.
    pub active: i64,
    /// Maximum concurrently running instances observed.
    pub peak_active: i64,
}

impl PlatformMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        PlatformMetrics::default()
    }

    pub(crate) fn start(&self, cold: bool) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        if cold {
            self.cold_starts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
        }
        let now = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_active.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn finish_ok(&self) {
        self.completions.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn finish_crash(&self) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_throttle(&self) {
        self.throttles.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> PlatformSnapshot {
        PlatformSnapshot {
            invocations: self.invocations.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            throttles: self.throttles.load(Ordering::Relaxed),
            cold_starts: self.cold_starts.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            peak_active: self.peak_active.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_finish_bookkeeping() {
        let m = PlatformMetrics::new();
        m.start(true);
        m.start(false);
        m.finish_ok();
        m.finish_crash();
        m.record_timeout();
        m.record_throttle();
        let s = m.snapshot();
        assert_eq!(s.invocations, 2);
        assert_eq!(s.cold_starts, 1);
        assert_eq!(s.warm_starts, 1);
        assert_eq!(s.completions, 1);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.throttles, 1);
        assert_eq!(s.active, 0);
        assert_eq!(s.peak_active, 2);
    }
}

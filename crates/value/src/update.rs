//! Update expressions applied atomically to a row.
//!
//! These model DynamoDB update expressions: an ordered list of actions
//! applied within the row's atomicity scope. Beldi's write wrapper
//! (paper Fig. 6) issues updates such as
//! `Value = {val}; LogSize = LogSize + 1; RecentWrites[{logKey}] = NULL`,
//! which map to a [`Update`] of three actions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ValueError, ValueResult};
use crate::path::Path;
use crate::value::Value;

/// One action inside an [`Update`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateAction {
    /// `SET path = value`, creating intermediate maps as needed.
    Set(Path, Value),
    /// `SET path = path + delta` with a missing attribute treated as `0`
    /// (DynamoDB `ADD` semantics).
    Inc(Path, i64),
    /// `REMOVE path`; removing an absent path is a no-op.
    Remove(Path),
    /// `SET path = value` only if the path is currently absent
    /// (DynamoDB `if_not_exists`); otherwise a no-op.
    SetIfAbsent(Path, Value),
}

/// An ordered list of update actions, applied atomically by the database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Update {
    actions: Vec<UpdateAction>,
}

impl Update {
    /// Creates an empty update.
    pub fn new() -> Self {
        Update::default()
    }

    /// Appends `SET path = value` (builder style).
    pub fn set(mut self, path: impl Into<Path>, value: impl Into<Value>) -> Self {
        self.actions
            .push(UpdateAction::Set(path.into(), value.into()));
        self
    }

    /// Appends `SET path = path + delta` (builder style).
    pub fn inc(mut self, path: impl Into<Path>, delta: i64) -> Self {
        self.actions.push(UpdateAction::Inc(path.into(), delta));
        self
    }

    /// Appends `REMOVE path` (builder style).
    pub fn remove(mut self, path: impl Into<Path>) -> Self {
        self.actions.push(UpdateAction::Remove(path.into()));
        self
    }

    /// Appends `SET path = value` gated on absence (builder style).
    pub fn set_if_absent(mut self, path: impl Into<Path>, value: impl Into<Value>) -> Self {
        self.actions
            .push(UpdateAction::SetIfAbsent(path.into(), value.into()));
        self
    }

    /// Appends an already-built action (builder style); useful when
    /// merging update fragments.
    pub fn push(mut self, action: UpdateAction) -> Self {
        self.actions.push(action);
        self
    }

    /// Returns the actions in application order.
    pub fn actions(&self) -> &[UpdateAction] {
        &self.actions
    }

    /// Returns true if the update contains no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Applies all actions to `row`, in order.
    ///
    /// The caller (the database) is responsible for making the application
    /// atomic; on error the caller must discard the partially updated row.
    pub fn apply(&self, row: &mut Value) -> ValueResult<()> {
        for action in &self.actions {
            match action {
                UpdateAction::Set(p, v) => row.set_path(p, v.clone())?,
                UpdateAction::Inc(p, delta) => {
                    let cur = match row.get_path(p)? {
                        Some(Value::Int(i)) => *i,
                        Some(other) => {
                            return Err(ValueError::TypeMismatch {
                                expected: "int",
                                found: other.kind().name(),
                            })
                        }
                        None => 0,
                    };
                    let next = cur.checked_add(*delta).ok_or(ValueError::Overflow)?;
                    row.set_path(p, Value::Int(next))?;
                }
                UpdateAction::Remove(p) => {
                    row.remove_path(p)?;
                }
                UpdateAction::SetIfAbsent(p, v) => {
                    if row.get_path(p)?.is_none() {
                        row.set_path(p, v.clone())?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            match a {
                UpdateAction::Set(p, v) => write!(f, "SET {p} = {v}")?,
                UpdateAction::Inc(p, d) => write!(f, "SET {p} = {p} + {d}")?,
                UpdateAction::Remove(p) => write!(f, "REMOVE {p}")?,
                UpdateAction::SetIfAbsent(p, v) => write!(f, "SET {p} = if_not_exists({p}, {v})")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn set_and_inc() {
        let mut row = vmap! { "LogSize" => 1i64 };
        Update::new()
            .set("Value", "v2")
            .inc("LogSize", 1)
            .apply(&mut row)
            .unwrap();
        assert_eq!(row.get_str("Value"), Some("v2"));
        assert_eq!(row.get_int("LogSize"), Some(2));
    }

    #[test]
    fn inc_missing_starts_at_zero() {
        let mut row = vmap! {};
        Update::new().inc("n", 5).apply(&mut row).unwrap();
        assert_eq!(row.get_int("n"), Some(5));
    }

    #[test]
    fn inc_non_int_is_error() {
        let mut row = vmap! { "n" => "str" };
        let err = Update::new().inc("n", 1).apply(&mut row).unwrap_err();
        assert!(matches!(err, ValueError::TypeMismatch { .. }));
    }

    #[test]
    fn inc_overflow_is_error() {
        let mut row = vmap! { "n" => i64::MAX };
        let err = Update::new().inc("n", 1).apply(&mut row).unwrap_err();
        assert_eq!(err, ValueError::Overflow);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut row = vmap! { "a" => 1i64 };
        Update::new().remove("zzz").apply(&mut row).unwrap();
        assert_eq!(row.get_int("a"), Some(1));
    }

    #[test]
    fn set_if_absent() {
        let mut row = vmap! { "a" => 1i64 };
        Update::new()
            .set_if_absent("a", 99i64)
            .set_if_absent("b", 2i64)
            .apply(&mut row)
            .unwrap();
        assert_eq!(row.get_int("a"), Some(1));
        assert_eq!(row.get_int("b"), Some(2));
    }

    #[test]
    fn nested_log_entry_write() {
        // The shape used by Beldi's write wrapper for DAAL rows.
        let mut row = vmap! { "RecentWrites" => vmap! {}, "LogSize" => 0i64 };
        let log_key = Path::attr("RecentWrites").then_attr("inst-1:4");
        Update::new()
            .set("Value", "new")
            .inc("LogSize", 1)
            .set(log_key.clone(), Value::Null)
            .apply(&mut row)
            .unwrap();
        assert_eq!(row.get_path(&log_key).unwrap(), Some(&Value::Null));
        assert_eq!(row.get_int("LogSize"), Some(1));
    }

    #[test]
    fn actions_apply_in_order() {
        let mut row = vmap! {};
        Update::new()
            .set("a", 1i64)
            .set("a", 2i64)
            .apply(&mut row)
            .unwrap();
        assert_eq!(row.get_int("a"), Some(2));
    }

    #[test]
    fn display_is_readable() {
        let u = Update::new().set("a", 1i64).inc("b", 2).remove("c");
        let s = format!("{u}");
        assert!(s.contains("SET a = 1"));
        assert!(s.contains("b + 2"));
        assert!(s.contains("REMOVE c"));
    }
}

//! JSON encoding and decoding for [`Value`].
//!
//! The workspace runs fully offline (no `serde_json`), but the benchmark
//! subsystem needs machine-readable reports (`BENCH_results.json`) and a
//! CI gate that reads them back. [`Value`] is already a JSON-shaped data
//! model, so this module provides the two missing halves:
//!
//! - [`to_json`] — deterministic text: map keys come out in [`Map`]'s
//!   (sorted) order and floats that carry no fraction are written with a
//!   trailing `.0` so integers and floats survive a round trip;
//! - [`from_json`] — a strict recursive-descent parser covering the full
//!   JSON grammar (nested containers, string escapes including `\uXXXX`
//!   with surrogate pairs, scientific notation).
//!
//! Lossiness: [`Value::Bytes`] has no JSON representation and is written
//! as a hex string (it does not occur in benchmark reports); non-finite
//! floats are written as `null`, as `JSON.stringify` does.

use std::fmt::Write as _;

use crate::error::{ValueError, ValueResult};
use crate::value::{Map, Value};

/// Serializes a value as compact JSON with deterministic key order.
pub fn to_json(v: &Value) -> String {
    let mut out = String::new();
    write_json(&mut out, v, None);
    out
}

/// Serializes a value as indented JSON (two spaces per level).
pub fn to_json_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_json(&mut out, v, Some(0));
    out.push('\n');
    out
}

fn write_json(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Bytes(b) => {
            // No JSON encoding exists for raw bytes; a hex string keeps
            // the report readable (and the value greppable).
            out.push('"');
            for byte in b {
                let _ = write!(out, "{byte:02x}");
            }
            out.push('"');
        }
        Value::List(items) => {
            write_seq(out, items.iter(), items.len(), indent, '[', ']', write_json)
        }
        Value::Map(m) => write_seq(out, m.iter(), m.len(), indent, '{', '}', |o, (k, v), i| {
            write_string(o, k);
            o.push(':');
            if i.is_some() {
                o.push(' ');
            }
            write_json(o, v, i);
        }),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        write_item(out, item, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    if x == x.trunc() {
        // Keep the float-ness through a round trip: `{:.1}` prints the
        // full decimal expansion plus `.0` (exact for any whole f64, at
        // any magnitude), so the parser reads it back as a float.
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// [`ValueError::Parse`] on any syntax error, with a byte offset.
pub fn from_json(text: &str) -> ValueResult<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ValueError {
        ValueError::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> ValueResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> ValueResult<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> ValueResult<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.list(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn list(&mut self) -> ValueResult<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::List(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> ValueResult<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> ValueResult<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume the longest run of plain bytes in one step
                    // and validate just that slice as UTF-8. Stopping on
                    // `"`, `\`, and control bytes is safe mid-character:
                    // UTF-8 continuation bytes are always >= 0x80. (The
                    // obvious per-character variant — `from_utf8` on the
                    // whole remaining input each iteration — is O(n^2)
                    // and took 40+ s on a 2 MB benchmark report.)
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&nb) = self.bytes.get(end) {
                        if nb == b'"' || nb == b'\\' || nb < 0x20 {
                            break;
                        }
                        end += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> ValueResult<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> ValueResult<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(1.5),
            Value::Float(-0.25),
            Value::Str("hello".into()),
            Value::Str("esc \" \\ \n \t ü 🎉".into()),
        ] {
            let text = to_json(&v);
            assert_eq!(from_json(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        for x in [3.0, 1e15, 9e18, 1e300, -2f64.powi(60)] {
            let v = Value::Float(x);
            let text = to_json(&v);
            assert_eq!(from_json(&text).unwrap(), v, "{text}");
        }
        assert_eq!(to_json(&Value::Float(3.0)), "3.0");
    }

    #[test]
    fn containers_round_trip() {
        let v = vmap! {
            "list" => Value::List(vec![Value::Int(1), Value::Null, Value::Str("x".into())]),
            "nested" => vmap! { "a" => 1i64, "b" => Value::List(vec![]) },
            "empty" => Value::Map(Map::new()),
        };
        let compact = to_json(&v);
        let pretty = to_json_pretty(&v);
        assert_eq!(from_json(&compact).unwrap(), v);
        assert_eq!(from_json(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn map_keys_are_sorted_deterministically() {
        let v = vmap! { "b" => 2i64, "a" => 1i64, "c" => 3i64 };
        assert_eq!(to_json(&v), r#"{"a":1,"b":2,"c":3}"#);
    }

    #[test]
    fn standard_json_parses() {
        let v = from_json(r#" { "x": [1, 2.5, true, null, "s"], "y": {"z": -3e2} } "#).unwrap();
        assert_eq!(v.get_list("x").unwrap().len(), 5);
        assert_eq!(
            v.get_attr("y").unwrap().get_attr("z"),
            Some(&Value::Float(-300.0))
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            from_json(r#""\u00fc\ud83c\udf89""#).unwrap(),
            Value::Str("ü🎉".into())
        );
    }

    #[test]
    fn syntax_errors_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "[01x]",
            "\"\\q\"",
        ] {
            assert!(from_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    /// Parsing must stay linear in input size: the chaos drive's nightly
    /// reports reach tens of megabytes, and a quadratic string path once
    /// turned `bench_gate` into a 30-minute CPU burn. A megabyte of
    /// string-heavy JSON should parse in milliseconds; the bound is
    /// generous enough to never flake, while a quadratic regression
    /// (minutes) sails past it.
    #[test]
    fn large_string_heavy_documents_parse_fast() {
        let mut doc = String::from("[");
        for i in 0..20_000 {
            if i > 0 {
                doc.push(',');
            }
            let _ = write!(doc, "{{\"key-{i}\":\"{}\"}}", "payload-ü-".repeat(5));
        }
        doc.push(']');
        let t0 = std::time::Instant::now();
        let v = from_json(&doc).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 20_000);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "parse took {:?} — string scanning has gone super-linear",
            t0.elapsed()
        );
    }

    #[test]
    fn bytes_serialize_as_hex() {
        let v = Value::Bytes(vec![0xde, 0xad]);
        assert_eq!(to_json(&v), "\"dead\"");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_json(&Value::Float(f64::INFINITY)), "null");
    }
}

//! Attribute paths for navigating [`crate::Value`] trees.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ValueError, ValueResult};

/// One step of a [`Path`]: a map attribute or a list index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathSegment {
    /// A map attribute name.
    Attr(String),
    /// A list index.
    Index(usize),
}

/// A parsed attribute path such as `RecentWrites.step:3` or `items[2].id`.
///
/// Attribute names may contain any character except `.`, `[`, and `]`;
/// Beldi log keys (`<instance>:<step>`) therefore embed directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    segments: Vec<PathSegment>,
}

impl Path {
    /// Creates a path from pre-built segments.
    pub fn new(segments: Vec<PathSegment>) -> Self {
        Path { segments }
    }

    /// Creates a single-attribute path without parsing.
    ///
    /// Unlike [`Path::parse`], the attribute may contain dots or brackets;
    /// use this for dynamic keys such as Beldi log keys.
    pub fn attr(name: impl Into<String>) -> Self {
        Path {
            segments: vec![PathSegment::Attr(name.into())],
        }
    }

    /// Appends an attribute segment (builder style).
    pub fn then_attr(mut self, name: impl Into<String>) -> Self {
        self.segments.push(PathSegment::Attr(name.into()));
        self
    }

    /// Appends an index segment (builder style).
    pub fn then_index(mut self, i: usize) -> Self {
        self.segments.push(PathSegment::Index(i));
        self
    }

    /// Parses a dotted path with optional `[i]` index suffixes.
    ///
    /// # Examples
    ///
    /// ```
    /// use beldi_value::Path;
    ///
    /// let p = Path::parse("a.b[2].c").unwrap();
    /// assert_eq!(p.segments().len(), 4);
    /// ```
    pub fn parse(s: &str) -> ValueResult<Self> {
        if s.is_empty() {
            return Err(ValueError::BadPath(s.to_owned()));
        }
        let mut segments = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(ValueError::BadPath(s.to_owned()));
            }
            // Split off any `[i]` suffixes.
            let mut rest = part;
            let attr_end = rest.find('[').unwrap_or(rest.len());
            let (attr, mut idx) = rest.split_at(attr_end);
            if !attr.is_empty() {
                segments.push(PathSegment::Attr(attr.to_owned()));
            } else if !idx.is_empty() && segments.is_empty() {
                return Err(ValueError::BadPath(s.to_owned()));
            }
            while !idx.is_empty() {
                if !idx.starts_with('[') {
                    return Err(ValueError::BadPath(s.to_owned()));
                }
                let close = idx
                    .find(']')
                    .ok_or_else(|| ValueError::BadPath(s.to_owned()))?;
                let n: usize = idx[1..close]
                    .parse()
                    .map_err(|_| ValueError::BadPath(s.to_owned()))?;
                segments.push(PathSegment::Index(n));
                idx = &idx[close + 1..];
            }
            rest = "";
            let _ = rest;
        }
        Ok(Path { segments })
    }

    /// Returns the segments of the path.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Returns true if the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Returns the first segment's attribute name, if it is an attribute.
    ///
    /// Projections and filters often only need the top-level attribute.
    pub fn root_attr(&self) -> Option<&str> {
        match self.segments.first() {
            Some(PathSegment::Attr(a)) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            match seg {
                PathSegment::Attr(a) => {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    write!(f, "{a}")?;
                }
                PathSegment::Index(n) => write!(f, "[{n}]")?,
            }
        }
        Ok(())
    }
}

impl From<&str> for Path {
    /// Parses the string, panicking on malformed paths.
    ///
    /// Intended for string literals in code; use [`Path::parse`] for
    /// untrusted input and [`Path::attr`] for dynamic single attributes.
    fn from(s: &str) -> Self {
        Path::parse(s).expect("malformed path literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let p = Path::parse("abc").unwrap();
        assert_eq!(p.segments(), &[PathSegment::Attr("abc".into())]);
        assert_eq!(p.root_attr(), Some("abc"));
    }

    #[test]
    fn parse_nested_and_indexed() {
        let p = Path::parse("a.b[0][1].c").unwrap();
        assert_eq!(
            p.segments(),
            &[
                PathSegment::Attr("a".into()),
                PathSegment::Attr("b".into()),
                PathSegment::Index(0),
                PathSegment::Index(1),
                PathSegment::Attr("c".into()),
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("a..b").is_err());
        assert!(Path::parse("a[x]").is_err());
        assert!(Path::parse("a[1").is_err());
    }

    #[test]
    fn attr_allows_special_chars() {
        let p = Path::attr("instance:3.weird[chars]");
        assert_eq!(p.segments().len(), 1);
        assert_eq!(p.root_attr(), Some("instance:3.weird[chars]"));
    }

    #[test]
    fn display_round_trips() {
        for s in ["a", "a.b", "a.b[3].c"] {
            let p = Path::parse(s).unwrap();
            assert_eq!(format!("{p}"), s);
        }
    }

    #[test]
    fn builder_style() {
        let p = Path::attr("a").then_attr("b").then_index(2);
        assert_eq!(format!("{p}"), "a.b[2]");
    }
}

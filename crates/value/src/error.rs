//! Error type for value and expression operations.

use std::fmt;

/// Result alias for fallible value operations.
pub type ValueResult<T> = Result<T, ValueError>;

/// Errors raised while navigating values or evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// A path segment addressed a map attribute that does not exist.
    MissingAttr(String),
    /// A path segment addressed a list index that is out of bounds.
    IndexOutOfBounds(usize),
    /// An operation expected a different [`crate::Kind`] of value.
    TypeMismatch {
        /// What the operation expected (e.g. `"map"`).
        expected: &'static str,
        /// What it found (e.g. `"list"`).
        found: &'static str,
    },
    /// A path was empty or otherwise malformed.
    BadPath(String),
    /// Arithmetic in an update expression overflowed.
    Overflow,
    /// A text document (JSON) failed to parse.
    Parse(String),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::MissingAttr(a) => write!(f, "missing attribute `{a}`"),
            ValueError::IndexOutOfBounds(i) => write!(f, "list index {i} out of bounds"),
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::BadPath(p) => write!(f, "malformed path `{p}`"),
            ValueError::Overflow => write!(f, "integer overflow in update expression"),
            ValueError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for ValueError {}

//! DynamoDB-style size accounting for values.
//!
//! The linked DAAL exists because DynamoDB's atomicity scope — one row —
//! holds at most 400 KB (paper §4.1). The simulated database enforces a
//! configurable row-size limit using the byte model below, which follows
//! DynamoDB's documented item-size rules closely enough for the experiments:
//! attribute names count their UTF-8 length, strings/bytes their raw
//! length, numbers a fixed 9 bytes, booleans and null 1 byte, and
//! containers 3 bytes of overhead plus their contents.

use crate::value::Value;

/// Types with a DynamoDB-style serialized size.
pub trait SizeOf {
    /// Returns the size in bytes this value contributes to a row.
    fn size_bytes(&self) -> usize;
}

impl SizeOf for Value {
    fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 9,
            Value::Float(_) => 9,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::List(l) => 3 + l.iter().map(SizeOf::size_bytes).sum::<usize>(),
            Value::Map(m) => {
                3 + m
                    .iter()
                    .map(|(k, v)| k.len() + v.size_bytes())
                    .sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Value::Null.size_bytes(), 1);
        assert_eq!(Value::Bool(true).size_bytes(), 1);
        assert_eq!(Value::Int(0).size_bytes(), 9);
        assert_eq!(Value::Float(0.0).size_bytes(), 9);
        assert_eq!(Value::Str("abcd".into()).size_bytes(), 4);
        assert_eq!(Value::Bytes(vec![0; 10]).size_bytes(), 10);
    }

    #[test]
    fn container_sizes_include_overhead_and_names() {
        let v = vmap! { "ab" => "xyz" };
        // 3 (map) + 2 (name) + 3 (str) = 8.
        assert_eq!(v.size_bytes(), 8);
        let l = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(l.size_bytes(), 3 + 18);
    }

    #[test]
    fn nested_sizes_compose() {
        let inner = vmap! { "k" => 1i64 };
        let inner_size = inner.size_bytes();
        let outer = vmap! { "outer" => inner };
        assert_eq!(outer.size_bytes(), 3 + 5 + inner_size);
    }
}

//! Condition expressions evaluated against a row.
//!
//! These model DynamoDB condition expressions: a boolean combination of
//! comparisons, existence checks, and prefix tests over attribute paths.
//! A comparison against an *absent* path evaluates to `false` (matching
//! DynamoDB, where `attr < :v` fails when `attr` is missing); use
//! [`Cond::exists`]/[`Cond::not_exists`] for explicit presence checks.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ValueResult;
use crate::path::Path;
use crate::value::Value;

/// A condition expression over a row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// Always true.
    True,
    /// Always false.
    False,
    /// The attribute at the path exists (may be `Null`).
    Exists(Path),
    /// The attribute at the path does not exist.
    NotExists(Path),
    /// `path == value`; false when absent.
    Eq(Path, Value),
    /// `path != value`; false when absent.
    Ne(Path, Value),
    /// `path < value`; false when absent.
    Lt(Path, Value),
    /// `path <= value`; false when absent.
    Le(Path, Value),
    /// `path > value`; false when absent.
    Gt(Path, Value),
    /// `path >= value`; false when absent.
    Ge(Path, Value),
    /// String attribute at `path` starts with the prefix; false when absent
    /// or not a string.
    BeginsWith(Path, String),
    /// Both conditions hold.
    And(Box<Cond>, Box<Cond>),
    /// Either condition holds.
    Or(Box<Cond>, Box<Cond>),
    /// The condition does not hold.
    Not(Box<Cond>),
}

impl Cond {
    /// Builds `path exists`.
    pub fn exists(path: impl Into<Path>) -> Self {
        Cond::Exists(path.into())
    }

    /// Builds `path does not exist`.
    pub fn not_exists(path: impl Into<Path>) -> Self {
        Cond::NotExists(path.into())
    }

    /// Builds `path == value`.
    pub fn eq(path: impl Into<Path>, value: impl Into<Value>) -> Self {
        Cond::Eq(path.into(), value.into())
    }

    /// Builds `path != value`.
    pub fn ne(path: impl Into<Path>, value: impl Into<Value>) -> Self {
        Cond::Ne(path.into(), value.into())
    }

    /// Builds `path < value`.
    pub fn lt(path: impl Into<Path>, value: impl Into<Value>) -> Self {
        Cond::Lt(path.into(), value.into())
    }

    /// Builds `path <= value`.
    pub fn le(path: impl Into<Path>, value: impl Into<Value>) -> Self {
        Cond::Le(path.into(), value.into())
    }

    /// Builds `path > value`.
    pub fn gt(path: impl Into<Path>, value: impl Into<Value>) -> Self {
        Cond::Gt(path.into(), value.into())
    }

    /// Builds `path >= value`.
    pub fn ge(path: impl Into<Path>, value: impl Into<Value>) -> Self {
        Cond::Ge(path.into(), value.into())
    }

    /// Builds `begins_with(path, prefix)`.
    pub fn begins_with(path: impl Into<Path>, prefix: impl Into<String>) -> Self {
        Cond::BeginsWith(path.into(), prefix.into())
    }

    /// Combines with a conjunction (builder style).
    pub fn and(self, other: Cond) -> Self {
        match (self, other) {
            (Cond::True, c) | (c, Cond::True) => c,
            (Cond::False, _) | (_, Cond::False) => Cond::False,
            (a, b) => Cond::And(Box::new(a), Box::new(b)),
        }
    }

    /// Combines with a disjunction (builder style).
    pub fn or(self, other: Cond) -> Self {
        match (self, other) {
            (Cond::False, c) | (c, Cond::False) => c,
            (Cond::True, _) | (_, Cond::True) => Cond::True,
            (a, b) => Cond::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negates the condition (builder style).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Cond::True => Cond::False,
            Cond::False => Cond::True,
            Cond::Not(inner) => *inner,
            c => Cond::Not(Box::new(c)),
        }
    }

    /// Evaluates the condition against a row value.
    ///
    /// A document path that cannot be resolved — because an attribute is
    /// missing *or* because the path traverses a non-container (e.g.
    /// `LockOwner.Id` when `LockOwner` is `Null`) — counts as **absent**:
    /// comparisons and `exists` are false, `not_exists` is true. This
    /// matches DynamoDB, where condition expressions never raise type
    /// errors, they just fail to match. (The crash-schedule explorer
    /// caught the previous stricter behaviour: a re-executed `unlock`
    /// evaluates its held-by-me condition against an already-released
    /// `LockOwner: null` row, which must read as "condition false →
    /// consult the write log", not as a validation error.)
    pub fn eval(&self, row: &Value) -> ValueResult<bool> {
        // Unresolvable paths (including traversal through scalars) are
        // absent, per the DynamoDB semantics above.
        let lookup = |p: &Path| row.get_path(p).ok().flatten();
        Ok(match self {
            Cond::True => true,
            Cond::False => false,
            Cond::Exists(p) => lookup(p).is_some(),
            Cond::NotExists(p) => lookup(p).is_none(),
            Cond::Eq(p, v) => matches!(lookup(p), Some(x) if x == v),
            Cond::Ne(p, v) => matches!(lookup(p), Some(x) if x != v),
            Cond::Lt(p, v) => matches!(lookup(p), Some(x) if x < v),
            Cond::Le(p, v) => matches!(lookup(p), Some(x) if x <= v),
            Cond::Gt(p, v) => matches!(lookup(p), Some(x) if x > v),
            Cond::Ge(p, v) => matches!(lookup(p), Some(x) if x >= v),
            Cond::BeginsWith(p, prefix) => matches!(
                lookup(p),
                Some(Value::Str(s)) if s.starts_with(prefix.as_str())
            ),
            Cond::And(a, b) => a.eval(row)? && b.eval(row)?,
            Cond::Or(a, b) => a.eval(row)? || b.eval(row)?,
            Cond::Not(c) => !c.eval(row)?,
        })
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "TRUE"),
            Cond::False => write!(f, "FALSE"),
            Cond::Exists(p) => write!(f, "exists({p})"),
            Cond::NotExists(p) => write!(f, "not_exists({p})"),
            Cond::Eq(p, v) => write!(f, "{p} == {v}"),
            Cond::Ne(p, v) => write!(f, "{p} != {v}"),
            Cond::Lt(p, v) => write!(f, "{p} < {v}"),
            Cond::Le(p, v) => write!(f, "{p} <= {v}"),
            Cond::Gt(p, v) => write!(f, "{p} > {v}"),
            Cond::Ge(p, v) => write!(f, "{p} >= {v}"),
            Cond::BeginsWith(p, s) => write!(f, "begins_with({p}, {s:?})"),
            Cond::And(a, b) => write!(f, "({a} && {b})"),
            Cond::Or(a, b) => write!(f, "({a} || {b})"),
            Cond::Not(c) => write!(f, "!({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn path_through_non_container_is_absent_not_an_error() {
        // DynamoDB semantics: `LockOwner.Id` with `LockOwner: null` fails
        // to match rather than raising a type error (regression caught by
        // the crash-schedule explorer's unlock-replay sweep).
        let row = vmap! { "LockOwner" => Value::Null, "N" => 4i64 };
        let held = Cond::eq(Path::attr("LockOwner").then_attr("Id"), "me");
        assert_eq!(held.eval(&row), Ok(false));
        assert_eq!(
            Cond::exists(Path::attr("LockOwner").then_attr("Id")).eval(&row),
            Ok(false)
        );
        assert_eq!(
            Cond::not_exists(Path::attr("LockOwner").then_attr("Id")).eval(&row),
            Ok(true)
        );
        // Traversing through a scalar behaves the same way.
        assert_eq!(
            Cond::eq(Path::attr("N").then_attr("x"), 1i64).eval(&row),
            Ok(false)
        );
    }

    fn row() -> Value {
        vmap! {
            "LogSize" => 3i64,
            "Key" => "k1",
            "RecentWrites" => vmap! { "i:0" => true },
            "LockOwner" => Value::Null,
        }
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert!(Cond::eq("Key", "k1").eval(&r).unwrap());
        assert!(Cond::lt("LogSize", 4i64).eval(&r).unwrap());
        assert!(!Cond::lt("LogSize", 3i64).eval(&r).unwrap());
        assert!(Cond::le("LogSize", 3i64).eval(&r).unwrap());
        assert!(Cond::gt("LogSize", 2i64).eval(&r).unwrap());
        assert!(Cond::ge("LogSize", 3i64).eval(&r).unwrap());
        assert!(Cond::ne("Key", "other").eval(&r).unwrap());
    }

    #[test]
    fn absent_path_comparisons_are_false() {
        let r = row();
        assert!(!Cond::eq("Missing", 1i64).eval(&r).unwrap());
        assert!(!Cond::lt("Missing", 1i64).eval(&r).unwrap());
        assert!(!Cond::ne("Missing", 1i64).eval(&r).unwrap());
    }

    #[test]
    fn existence() {
        let r = row();
        assert!(Cond::exists("LockOwner").eval(&r).unwrap());
        assert!(Cond::not_exists("NextRow").eval(&r).unwrap());
        assert!(Cond::exists(Path::parse("RecentWrites.i:0").unwrap())
            .eval(&r)
            .unwrap());
        // Log-key style dynamic attribute via Path::attr.
        let p = Path::attr("RecentWrites").then_attr("i:0");
        assert!(Cond::Exists(p).eval(&r).unwrap());
    }

    #[test]
    fn null_is_present_but_not_equal_to_values() {
        let r = row();
        assert!(Cond::eq("LockOwner", Value::Null).eval(&r).unwrap());
        assert!(!Cond::eq("LockOwner", 1i64).eval(&r).unwrap());
    }

    #[test]
    fn boolean_combinators_simplify() {
        assert_eq!(Cond::True.and(Cond::eq("a", 1i64)), Cond::eq("a", 1i64));
        assert_eq!(Cond::False.and(Cond::eq("a", 1i64)), Cond::False);
        assert_eq!(Cond::False.or(Cond::eq("a", 1i64)), Cond::eq("a", 1i64));
        assert_eq!(Cond::True.or(Cond::eq("a", 1i64)), Cond::True);
        assert_eq!(Cond::True.not(), Cond::False);
        assert_eq!(Cond::eq("a", 1i64).not().not(), Cond::eq("a", 1i64));
    }

    #[test]
    fn begins_with() {
        let r = row();
        assert!(Cond::begins_with("Key", "k").eval(&r).unwrap());
        assert!(!Cond::begins_with("Key", "z").eval(&r).unwrap());
        assert!(!Cond::begins_with("LogSize", "3").eval(&r).unwrap());
    }

    #[test]
    fn beldi_lock_condition_shape() {
        // `LockOwner = NULL || LockOwner.id = TXNID` (paper Fig. 11).
        let free = Cond::eq("LockOwner", Value::Null)
            .or(Cond::eq(Path::parse("LockOwner.id").unwrap(), "txn-1"));
        let r = row();
        assert!(free.eval(&r).unwrap());
        let held = vmap! { "LockOwner" => vmap! { "id" => "txn-2" } };
        assert!(!free.eval(&held).unwrap());
        let mine = vmap! { "LockOwner" => vmap! { "id" => "txn-1" } };
        assert!(free.eval(&mine).unwrap());
    }
}

//! The dynamic [`Value`] type.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ValueError, ValueResult};
use crate::path::{Path, PathSegment};

/// Attribute maps use ordered keys so scans and dumps are deterministic.
pub type Map = BTreeMap<String, Value>;

/// A schema-less dynamic value, comparable to a DynamoDB attribute value.
///
/// `Value` supports a *total* order (used for sort keys and condition
/// comparisons): values of different kinds order by [`Kind`] rank, floats
/// order by IEEE total ordering so that `Value` can implement [`Eq`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub enum Value {
    /// The absent value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    Int(i64),
    /// A 64-bit float; ordered with IEEE total ordering.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte blob.
    Bytes(Vec<u8>),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed attribute map.
    Map(Map),
}

/// Discriminant of a [`Value`], used for ordering and error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// [`Value::Null`].
    Null,
    /// [`Value::Bool`].
    Bool,
    /// [`Value::Int`].
    Int,
    /// [`Value::Float`].
    Float,
    /// [`Value::Str`].
    Str,
    /// [`Value::Bytes`].
    Bytes,
    /// [`Value::List`].
    List,
    /// [`Value::Map`].
    Map,
}

impl Kind {
    /// Returns the lowercase name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Null => "null",
            Kind::Bool => "bool",
            Kind::Int => "int",
            Kind::Float => "float",
            Kind::Str => "str",
            Kind::Bytes => "bytes",
            Kind::List => "list",
            Kind::Map => "map",
        }
    }
}

impl Value {
    /// Returns the [`Kind`] of this value.
    pub fn kind(&self) -> Kind {
        match self {
            Value::Null => Kind::Null,
            Value::Bool(_) => Kind::Bool,
            Value::Int(_) => Kind::Int,
            Value::Float(_) => Kind::Float,
            Value::Str(_) => Kind::Str,
            Value::Bytes(_) => Kind::Bytes,
            Value::List(_) => Kind::List,
            Value::Map(_) => Kind::Map,
        }
    }

    /// Returns true if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if this is a [`Value::Float`] (or an int, widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&Vec<Value>> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the map if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the map mutably if this is a [`Value::Map`].
    pub fn as_map_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Convenience: gets a top-level attribute of a map value.
    pub fn get_attr(&self, name: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(name))
    }

    /// Convenience: gets a string-typed top-level attribute of a map value.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get_attr(name).and_then(Value::as_str)
    }

    /// Convenience: gets an int-typed top-level attribute of a map value.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get_attr(name).and_then(Value::as_int)
    }

    /// Convenience: gets a bool-typed top-level attribute of a map value.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get_attr(name).and_then(Value::as_bool)
    }

    /// Convenience: gets a list-typed top-level attribute of a map value.
    pub fn get_list(&self, name: &str) -> Option<&Vec<Value>> {
        self.get_attr(name).and_then(Value::as_list)
    }

    /// Navigates a [`Path`] into this value.
    ///
    /// Returns `Ok(None)` when an intermediate map lacks the attribute (the
    /// path is *absent*), and an error when a non-container is traversed.
    pub fn get_path(&self, path: &Path) -> ValueResult<Option<&Value>> {
        let mut cur = self;
        for seg in path.segments() {
            match (seg, cur) {
                (PathSegment::Attr(a), Value::Map(m)) => match m.get(a.as_str()) {
                    Some(v) => cur = v,
                    None => return Ok(None),
                },
                (PathSegment::Index(i), Value::List(l)) => match l.get(*i) {
                    Some(v) => cur = v,
                    None => return Ok(None),
                },
                (PathSegment::Attr(_), other) => {
                    return Err(ValueError::TypeMismatch {
                        expected: "map",
                        found: other.kind().name(),
                    })
                }
                (PathSegment::Index(_), other) => {
                    return Err(ValueError::TypeMismatch {
                        expected: "list",
                        found: other.kind().name(),
                    })
                }
            }
        }
        Ok(Some(cur))
    }

    /// Sets the value at `path`, creating intermediate maps as needed.
    ///
    /// Mirrors DynamoDB `SET` semantics: missing intermediate map attributes
    /// are created; traversing through a non-map is an error.
    pub fn set_path(&mut self, path: &Path, value: Value) -> ValueResult<()> {
        if path.is_empty() {
            *self = value;
            return Ok(());
        }
        let mut cur = self;
        let segs = path.segments();
        for seg in &segs[..segs.len() - 1] {
            cur = match (seg, cur) {
                (PathSegment::Attr(a), Value::Map(m)) => {
                    m.entry(a.clone()).or_insert_with(|| Value::Map(Map::new()))
                }
                (PathSegment::Index(i), Value::List(l)) => {
                    l.get_mut(*i).ok_or(ValueError::IndexOutOfBounds(*i))?
                }
                (PathSegment::Attr(_), other) => {
                    return Err(ValueError::TypeMismatch {
                        expected: "map",
                        found: other.kind().name(),
                    })
                }
                (PathSegment::Index(_), other) => {
                    return Err(ValueError::TypeMismatch {
                        expected: "list",
                        found: other.kind().name(),
                    })
                }
            };
        }
        match (segs.last().expect("non-empty path"), cur) {
            (PathSegment::Attr(a), Value::Map(m)) => {
                m.insert(a.clone(), value);
                Ok(())
            }
            (PathSegment::Index(i), Value::List(l)) => {
                if *i < l.len() {
                    l[*i] = value;
                    Ok(())
                } else if *i == l.len() {
                    l.push(value);
                    Ok(())
                } else {
                    Err(ValueError::IndexOutOfBounds(*i))
                }
            }
            (PathSegment::Attr(_), other) => Err(ValueError::TypeMismatch {
                expected: "map",
                found: other.kind().name(),
            }),
            (PathSegment::Index(_), other) => Err(ValueError::TypeMismatch {
                expected: "list",
                found: other.kind().name(),
            }),
        }
    }

    /// Removes the value at `path`, returning it if present.
    pub fn remove_path(&mut self, path: &Path) -> ValueResult<Option<Value>> {
        if path.is_empty() {
            return Err(ValueError::BadPath(String::new()));
        }
        let mut cur = self;
        let segs = path.segments();
        for seg in &segs[..segs.len() - 1] {
            cur = match (seg, cur) {
                (PathSegment::Attr(a), Value::Map(m)) => match m.get_mut(a.as_str()) {
                    Some(v) => v,
                    None => return Ok(None),
                },
                (PathSegment::Index(i), Value::List(l)) => match l.get_mut(*i) {
                    Some(v) => v,
                    None => return Ok(None),
                },
                _ => return Ok(None),
            };
        }
        match (segs.last().expect("non-empty path"), cur) {
            (PathSegment::Attr(a), Value::Map(m)) => Ok(m.remove(a.as_str())),
            (PathSegment::Index(i), Value::List(l)) => {
                if *i < l.len() {
                    Ok(Some(l.remove(*i)))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            // Cross-numeric comparison: compare as floats, fall back to kind
            // rank when incomparable (NaN never equals anything here because
            // total_cmp is used for Float-Float).
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.cmp(b),
            (a, b) => kind_rank(a).cmp(&kind_rank(b)),
        }
    }
}

fn kind_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Bytes(_) => 4,
        Value::List(_) => 5,
        Value::Map(_) => 6,
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        kind_rank(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::List(l) => l.hash(state),
            Value::Map(m) => m.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "b<{}B>", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::Str(s.clone())
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Map(m)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmap;

    #[test]
    fn kinds_and_accessors() {
        assert_eq!(Value::Null.kind(), Kind::Null);
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from(2i64).as_float(), Some(2.0));
        assert!(Value::Null.is_null());
        assert!(Value::from(0i64).as_bool().is_none());
    }

    #[test]
    fn ordering_is_total_and_kind_ranked() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(7),
            Value::Float(7.5),
            Value::Str("a".into()),
            Value::Bytes(vec![1]),
            Value::List(vec![]),
            Value::Map(Map::new()),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} should precede {}", w[0], w[1]);
        }
    }

    #[test]
    fn cross_numeric_comparison() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn path_get_set_remove() {
        let mut v = vmap! { "a" => vmap! { "b" => 1i64 } };
        let p = Path::parse("a.b").unwrap();
        assert_eq!(v.get_path(&p).unwrap(), Some(&Value::Int(1)));
        v.set_path(&p, Value::Int(2)).unwrap();
        assert_eq!(v.get_path(&p).unwrap(), Some(&Value::Int(2)));
        let removed = v.remove_path(&p).unwrap();
        assert_eq!(removed, Some(Value::Int(2)));
        assert_eq!(v.get_path(&p).unwrap(), None);
    }

    #[test]
    fn set_path_creates_intermediate_maps() {
        let mut v = vmap! { "x" => 0i64 };
        v.set_path(&Path::parse("a.b.c").unwrap(), Value::Int(9))
            .unwrap();
        assert_eq!(
            v.get_path(&Path::parse("a.b.c").unwrap()).unwrap(),
            Some(&Value::Int(9))
        );
    }

    #[test]
    fn set_path_through_scalar_is_error() {
        let mut v = vmap! { "a" => 1i64 };
        let err = v
            .set_path(&Path::parse("a.b").unwrap(), Value::Int(2))
            .unwrap_err();
        assert!(matches!(err, ValueError::TypeMismatch { .. }));
    }

    #[test]
    fn get_path_absent_is_none_not_error() {
        let v = vmap! { "a" => vmap! {} };
        assert_eq!(v.get_path(&Path::parse("a.zzz").unwrap()).unwrap(), None);
        assert_eq!(v.get_path(&Path::parse("nope.b").unwrap()).unwrap(), None);
    }

    #[test]
    fn display_round_readable() {
        let v = vmap! { "k" => vlist_test(), "n" => Value::Null };
        let s = format!("{v}");
        assert!(s.contains("k:"));
        assert!(s.contains("null"));
    }

    fn vlist_test() -> Value {
        Value::List(vec![Value::Int(1), Value::Str("x".into())])
    }

    #[test]
    fn list_index_path() {
        let v = vmap! { "l" => vlist_test() };
        let p = Path::parse("l[1]").unwrap();
        assert_eq!(v.get_path(&p).unwrap(), Some(&Value::Str("x".into())));
        let p2 = Path::parse("l[5]").unwrap();
        assert_eq!(v.get_path(&p2).unwrap(), None);
    }
}

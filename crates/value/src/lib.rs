//! Dynamic values and a small expression language for the Beldi reproduction.
//!
//! NoSQL stores such as DynamoDB, Bigtable, and Cosmos DB hold
//! schema-less attribute maps and support *conditional updates*: an atomic
//! read-modify-write of a single row, gated on a condition expression.
//! Beldi's correctness (OSDI 2020, §4) rests entirely on such conditional
//! updates, so this crate provides:
//!
//! - [`Value`] — a JSON-like dynamic value with a total order and
//!   DynamoDB-style size accounting,
//! - [`Path`] — dotted attribute paths (`RecentWrites.instance:3`),
//! - [`Cond`] — a condition-expression AST evaluated against a row,
//! - [`Update`] — an update-expression AST applied atomically to a row.
//!
//! The simulated database (`beldi-simdb`) evaluates [`Cond`]/[`Update`]
//! under a per-row atomicity scope; the Beldi library builds its wrappers
//! (read/write/condWrite of Figs. 5, 6, 17 in the paper) on top of them.

mod cond;
mod error;
pub mod fnv;
pub mod json;
mod path;
mod size;
mod update;
mod value;

pub use cond::Cond;
pub use error::{ValueError, ValueResult};
pub use fnv::Fnv1a;
pub use path::{Path, PathSegment};
pub use size::SizeOf;
pub use update::{Update, UpdateAction};
pub use value::{Kind, Map, Value};

/// Builds a [`Value::Map`] from `key => value` pairs.
///
/// # Examples
///
/// ```
/// use beldi_value::{vmap, Value};
///
/// let v = vmap! { "name" => "ada", "age" => 36i64 };
/// assert_eq!(v.get_attr("name"), Some(&Value::from("ada")));
/// ```
#[macro_export]
macro_rules! vmap {
    () => { $crate::Value::Map($crate::Map::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($k), $crate::Value::from($v)); )+
        $crate::Value::Map(m)
    }};
}

/// Builds a [`Value::List`] from values.
///
/// # Examples
///
/// ```
/// use beldi_value::{vlist, Value};
///
/// let v = vlist![1i64, "two", true];
/// assert_eq!(v.as_list().unwrap().len(), 3);
/// ```
#[macro_export]
macro_rules! vlist {
    () => { $crate::Value::List(::std::vec::Vec::new()) };
    ( $( $v:expr ),+ $(,)? ) => {
        $crate::Value::List(::std::vec![ $( $crate::Value::from($v) ),+ ])
    };
}

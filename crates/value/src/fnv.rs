//! A deterministic 64-bit FNV-1a hasher.
//!
//! `std::collections::hash_map::DefaultHasher` is randomly keyed per
//! process, so anything that must hash identically across runs, threads,
//! or machines — partition routing, cache sharding, benchmark state
//! digests — uses this fixed-basis hasher instead. One shared
//! implementation keeps the magic constants in one place.

use std::hash::{Hash, Hasher};

/// FNV-1a offset basis (64-bit).
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a with the fixed offset basis: a deterministic [`Hasher`].
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(OFFSET_BASIS)
    }
}

impl Fnv1a {
    /// Starts a hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Digest of one hashable value (e.g. a [`crate::Value`], whose
    /// `Hash` impl is content-based and platform-independent).
    pub fn digest<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut h = Fnv1a::new();
        value.hash(&mut h);
        h.finish()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        assert_eq!(Fnv1a::digest("x"), Fnv1a::digest("x"));
        assert_ne!(Fnv1a::digest("x"), Fnv1a::digest("y"));
        let v = crate::vmap! { "a" => 1i64 };
        assert_eq!(Fnv1a::digest(&v), Fnv1a::digest(&v));
    }
}

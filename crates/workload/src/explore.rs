//! The systematic crash-schedule explorer.
//!
//! FoundationDB-style simulation testing applied to Beldi's headline
//! guarantee: exactly-once execution "even if an SSF crashes in the midst
//! of its execution and is restarted an arbitrary number of times" (§2.2).
//! Instead of hand-picking a few crash points, the explorer *enumerates*
//! them:
//!
//! 1. **Oracle run** — a crash-free run of a fixed, seeded request
//!    sequence with the fault injector in trace mode, recording every
//!    crash point any instance passes (the *global crash stream*) plus the
//!    final canonical application state and effect count.
//! 2. **Depth-1 sweep** — one run per recorded crash point `k`, with a
//!    global plan that kills whatever instance reaches step `k`. Up to the
//!    crash the run is byte-identical to the oracle (same seeds, same
//!    sequential schedule), so every schedule is reached deterministically.
//! 3. **Depth-2 samples** — seeded random pairs `[i, i+gap]`
//!    ([`beldi_simfaas::CrashPlan::Script`]): the second crash lands in
//!    the *recovery* of the first, exercising multi-crash restarts.
//!
//! After each crashed run the driver lets root-level retries finish, then
//! [`beldi::BeldiEnv::drain_recovery`] re-drives any still-unfinished
//! intent through the intent collector on virtual time. The run passes
//! when (a) every request succeeded, (b) recovery quiesced, (c) the
//! canonical state equals the oracle's, and (d) the effect count equals
//! the oracle's. Any failure becomes a [`Violation`] carrying the exact
//! seed and schedule needed to replay it (see `DESIGN.md` §8).
//!
//! With [`ExploreOptions::gc_check`] the explorer additionally verifies
//! GC quiescence per schedule: after `T` elapses, repeated GC passes must
//! empty the read/invoke/write logs and intent tables and shrink every
//! DAAL to head + tail.

use std::time::Duration;

use beldi::value::Value;
use beldi::{schema, BeldiConfig, BeldiEnv, CrashPlan, Mode};
use beldi_apps::rng::request_rng;
use beldi_apps::WorkflowApp;
use beldi_simdb::{DbSnapshot, ScanRequest};
use beldi_simfaas::TraceEntry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for one exploration ([`explore`]).
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Frontend requests per run (the same seeded sequence every run).
    pub requests: usize,
    /// Seed for the request stream, the substrate RNGs, and the depth-2
    /// pair sampler. Identical options ⇒ identical report.
    pub seed: u64,
    /// Sweep every `stride`-th crash point (1 = exhaustive; smoke tests
    /// use larger strides).
    pub stride: usize,
    /// Cap on depth-1 schedules after striding (`None` = all).
    pub max_depth1: Option<usize>,
    /// Seeded random depth-2 pairs to run (0 = depth 1 only).
    pub depth2_samples: usize,
    /// Also assert GC quiescence after every schedule.
    pub gc_check: bool,
    /// Interleave one GC pass per SSF (invoked as the platform function
    /// `{ssf}.gc`, exactly as the timer trigger would) after every
    /// frontend request. The collectors' fixed `gc.*` crash points join
    /// the global crash stream, so the depth-1 sweep also kills GC
    /// passes *between any two of the paper's six steps* while SSF
    /// traffic is live — the online-GC regime — and verifies the final
    /// state against the (equally GC-interleaved) crash-free oracle.
    pub gc_interleave: bool,
    /// Enable the deliberate exactly-once bug
    /// ([`BeldiConfig::canary_skip_read_guard`]); the sweep is then
    /// expected to *report* violations.
    pub canary: bool,
    /// Route unconditional DAAL appends through the write combiner
    /// ([`BeldiConfig::daal_write_combine`]), adding the
    /// `daal.combine.*` crash points to the explored stream — the sweep
    /// then kills leaders mid-batch (pre/post flush, pre publish).
    pub write_combine: bool,
    /// Enable the combiner's planted bug
    /// ([`BeldiConfig::canary_combine_drop_replay`]: the leader skips
    /// replay detection, so a crashed-and-re-executed combined append
    /// re-applies); implies nothing unless `write_combine` is also on.
    /// The sweep is then expected to *report* violations.
    pub canary_combine: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            requests: 4,
            seed: 42,
            stride: 1,
            max_depth1: None,
            depth2_samples: 0,
            gc_check: false,
            gc_interleave: false,
            canary: false,
            write_combine: false,
            canary_combine: false,
        }
    }
}

/// What a schedule violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A frontend request returned an error the oracle did not.
    RequestError,
    /// Recovery never quiesced (unfinished intents after the drain cap).
    IncompleteRecovery,
    /// The scheduled crash never fired — determinism itself is broken.
    NoCrashInjected,
    /// Canonical application state differs from the crash-free oracle.
    StateDivergence,
    /// Effect count differs from the crash-free oracle.
    EffectDivergence,
    /// Logs/intents/DAAL rows survived the GC quiescence check.
    GcResidue,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::RequestError => "request-error",
            ViolationKind::IncompleteRecovery => "incomplete-recovery",
            ViolationKind::NoCrashInjected => "no-crash-injected",
            ViolationKind::StateDivergence => "state-divergence",
            ViolationKind::EffectDivergence => "effect-divergence",
            ViolationKind::GcResidue => "gc-residue",
        };
        f.write_str(s)
    }
}

/// One detected violation, with everything needed to replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The global crash schedule that produced it (empty = oracle run).
    pub schedule: Vec<u64>,
    /// The label of the first scheduled crash point (from the oracle
    /// trace), when known.
    pub label: String,
    /// Human-readable specifics (divergent rows, error messages).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let schedule: Vec<String> = self.schedule.iter().map(u64::to_string).collect();
        write!(
            f,
            "[{}] schedule=[{}] at `{}`: {}",
            self.kind,
            schedule.join(","),
            self.label,
            self.detail
        )
    }
}

/// The outcome of one exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// App explored.
    pub app: String,
    /// Table/logging mode explored.
    pub mode: Mode,
    /// The seed everything derived from.
    pub seed: u64,
    /// Requests per run.
    pub requests: usize,
    /// Crash points the oracle run recorded (the global stream length).
    pub crash_points: usize,
    /// Crash schedules executed (depth 1 + depth 2).
    pub schedules: usize,
    /// Total crashes injected across all schedules.
    pub crashes_injected: u64,
    /// The oracle's effect count.
    pub oracle_effects: i64,
    /// Everything that failed verification.
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// True when every schedule passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One summary line (greppable).
    pub fn summary(&self) -> String {
        format!(
            "app={} mode={} seed={} points={} schedules={} crashes={} effects={} violations={}",
            self.app,
            mode_name(self.mode),
            self.seed,
            self.crash_points,
            self.schedules,
            self.crashes_injected,
            self.oracle_effects,
            self.violations.len()
        )
    }
}

/// Short name of a mode (CLI flag spelling).
pub fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Beldi => "beldi",
        Mode::CrossTable => "cross-table",
        Mode::Baseline => "baseline",
    }
}

/// A two-SSF synthetic pipeline exercising every primitive — read, write,
/// conditional write, and a synchronous sub-invocation — with tiny
/// per-run cost.
///
/// This is the explorer's reference workload and the **canary's**
/// sensitizer: its conditional write computes from an earlier read
/// (`gate = count + 1`), so a crash landing between the read and the
/// not-yet-applied gate write forces the re-execution to recompute the
/// write's value from its replayed read. With the canary sabotage
/// ([`BeldiConfig::canary_skip_read_guard`]) that replay re-reads fresh
/// state and the gate diverges — the detection the self-test asserts.
/// Workloads whose writes don't depend on earlier reads (pure stores,
/// self-correcting list appends) cannot expose a read-replay bug, which
/// is exactly why the canary runs here.
pub struct PipelineApp;

impl WorkflowApp for PipelineApp {
    fn kind(&self) -> &'static str {
        "pipeline"
    }

    fn entry_point(&self) -> &'static str {
        "root"
    }

    fn setup(&self, env: &BeldiEnv) {
        use std::sync::Arc;
        env.register_ssf(
            "worker",
            &["wt"],
            Arc::new(|ctx, input: Value| {
                let c = ctx.read("wt", "count")?.as_int().unwrap_or(0);
                ctx.write("wt", "count", Value::Int(c + 1))?;
                Ok(Value::Int(input.as_int().unwrap_or(0) + c + 1))
            }),
        );
        env.register_ssf(
            "root",
            &["rt"],
            Arc::new(|ctx, input| {
                let c = ctx.read("rt", "count")?.as_int().unwrap_or(0);
                ctx.write("rt", "count", Value::Int(c + 1))?;
                let gated = ctx.cond_write(
                    "rt",
                    "gate",
                    Value::Int(c + 1),
                    beldi::value::Cond::not_exists(beldi::A_VALUE)
                        .or(beldi::value::Cond::lt(beldi::A_VALUE, 1_000_000i64)),
                )?;
                let sub = ctx.sync_invoke("worker", input)?;
                Ok(beldi::value::vmap! { "count" => c + 1, "gated" => gated, "sub" => sub })
            }),
        );
    }

    fn gen_request(&self, rng: &mut SmallRng) -> Value {
        Value::Int(rng.gen_range(0..100i64))
    }

    fn canonical_state(&self, env: &BeldiEnv) -> Value {
        beldi::value::vmap! {
            "root" => env.read_current("root", "rt", "count").unwrap_or(Value::Null),
            "gate" => env.read_current("root", "rt", "gate").unwrap_or(Value::Null),
            "worker" => env.read_current("worker", "wt", "count").unwrap_or(Value::Null),
        }
    }

    fn effect_count(&self, env: &BeldiEnv) -> i64 {
        let get = |ssf: &str, table: &str, key: &str| {
            env.read_current(ssf, table, key)
                .ok()
                .and_then(|v| v.as_int())
                .unwrap_or(0)
        };
        get("root", "rt", "count") + get("root", "rt", "gate") + get("worker", "wt", "count")
    }
}

/// Everything captured from one run. The environment rides along so
/// forensics (raw snapshot diffs) can be taken lazily — only when a
/// schedule actually diverges — instead of cloning every table on every
/// clean run.
struct RunOutcome {
    trace: Vec<TraceEntry>,
    injected: u64,
    errors: Vec<String>,
    unfinished: usize,
    state: Value,
    effects: i64,
    gc_residue: Option<String>,
}

/// `T` used for explorer environments: small, so GC quiescence elapses in
/// microseconds of real time on the fast-forward clock.
const EXPLORE_T_MAX: Duration = Duration::from_millis(200);

/// IC restart delay for explorer environments (virtual).
const EXPLORE_IC_DELAY: Duration = Duration::from_millis(40);

/// Drain passes before concluding recovery is stuck.
const DRAIN_PASSES: usize = 40;

fn build_env(mode: Mode, opts: &ExploreOptions) -> BeldiEnv {
    let cfg = BeldiConfig::for_mode(mode)
        .with_t_max(EXPLORE_T_MAX)
        .with_ic_restart_delay(EXPLORE_IC_DELAY)
        .with_canary_skip_read_guard(opts.canary)
        .with_write_combine(opts.write_combine)
        .with_canary_combine_drop_replay(opts.canary_combine);
    BeldiEnv::builder(cfg).seed(opts.seed).build()
}

/// Runs the seeded request sequence once under the given global crash
/// schedule (empty = crash-free), drains recovery, and captures the
/// verification state.
fn run_schedule(
    app: &dyn WorkflowApp,
    mode: Mode,
    opts: &ExploreOptions,
    schedule: &[u64],
    with_trace: bool,
) -> (RunOutcome, BeldiEnv) {
    let env = build_env(mode, opts);
    app.setup(&env);
    let faults = env.platform().faults();
    if with_trace {
        faults.start_trace();
    }
    if !schedule.is_empty() {
        let steps: Vec<usize> = schedule.iter().map(|&s| s as usize).collect();
        faults.set_global_plan(Some(CrashPlan::Script(steps)));
    }
    // With gc_interleave, one collector pass per SSF follows every
    // request — the same sequence in the oracle and in every schedule,
    // so the collectors' crash points occupy identical global-stream
    // positions run to run.
    let gc_names: Vec<String> = if opts.gc_interleave && mode != Mode::Baseline {
        env.ssf_names()
    } else {
        Vec::new()
    };
    let mut rng = request_rng(opts.seed);
    let mut errors = Vec::new();
    for i in 0..opts.requests {
        let payload = app.gen_request(&mut rng);
        if let Err(e) = env.invoke(app.entry_point(), payload) {
            errors.push(format!("request {i}: {e}"));
        }
        for ssf in &gc_names {
            // Collectors are at-least-once: an injected crash mid-pass is
            // the schedule under test, not a failure — the next pass (or
            // the end-of-run quiescence drive) resumes the idempotent
            // work. Only non-crash errors would be bugs, and those
            // surface through the gc_check residue scan.
            let _ = env
                .platform()
                .invoke_sync(&format!("{ssf}.gc"), Value::Null);
        }
    }
    let unfinished = match env.drain_recovery(DRAIN_PASSES) {
        Ok(report) => report.unfinished,
        Err(e) => {
            errors.push(format!("drain: {e}"));
            usize::MAX
        }
    };
    let trace = if with_trace {
        faults.take_trace()
    } else {
        Vec::new()
    };
    let state = app.canonical_state(&env);
    let effects = app.effect_count(&env);
    let gc_residue = if opts.gc_check && mode != Mode::Baseline {
        gc_quiescence_residue(&env, mode)
    } else {
        None
    };
    let outcome = RunOutcome {
        trace,
        injected: faults.injected_count(),
        errors,
        unfinished,
        state,
        effects,
        gc_residue,
    };
    (outcome, env)
}

/// Drives the GC to quiescence and reports anything left behind.
///
/// Four passes with `T` elapsing in between cover the full pipeline:
/// stamp finish times → recycle intents + delete logs + disconnect DAAL
/// rows → delete dangled rows (orphans from failed appends need one extra
/// stamp-then-delete round).
fn gc_quiescence_residue(env: &BeldiEnv, mode: Mode) -> Option<String> {
    let ssfs = env.ssf_names();
    for _ in 0..4 {
        env.clock().sleep(EXPLORE_T_MAX + Duration::from_millis(20));
        for ssf in &ssfs {
            if let Err(e) = env.run_gc_once(ssf) {
                return Some(format!("gc pass failed for {ssf}: {e}"));
            }
        }
    }
    let count = |table: &str| -> usize {
        env.db()
            .scan_all(table, &ScanRequest::all())
            .map(|r| r.len())
            .unwrap_or(0)
    };
    let mut residue = Vec::new();
    for ssf in &ssfs {
        for table in [schema::intent_table(ssf), schema::read_log_table(ssf)] {
            let n = count(&table);
            if n > 0 {
                residue.push(format!("{table}: {n} row(s)"));
            }
        }
        let n = count(&schema::invoke_log_table(ssf));
        if n > 0 {
            residue.push(format!("{}: {n} row(s)", schema::invoke_log_table(ssf)));
        }
        if mode == Mode::CrossTable {
            let n = count(&schema::write_log_table(ssf));
            if n > 0 {
                residue.push(format!("{}: {n} row(s)", schema::write_log_table(ssf)));
            }
        }
        if mode == Mode::Beldi {
            for logical in env.ssf_tables(ssf) {
                let shadow = schema::shadow_table(ssf, &logical);
                let n = count(&shadow);
                if n > 0 {
                    residue.push(format!("{shadow}: {n} shadow row(s)"));
                }
                // Every DAAL must have been compacted to head + tail.
                let data = schema::data_table(ssf, &logical);
                if let Ok(keys) = env.db().distinct_hash_keys(&data) {
                    for key in keys {
                        let rows = env
                            .db()
                            .query(&data, &key, &ScanRequest::all())
                            .map(|r| r.len())
                            .unwrap_or(0);
                        if rows > 2 {
                            residue.push(format!("{data}/{key}: {rows} DAAL rows (> head+tail)"));
                        }
                    }
                }
            }
        }
    }
    if residue.is_empty() {
        None
    } else {
        Some(residue.join("; "))
    }
}

/// Explores one app in one mode. See the module docs for the procedure.
pub fn explore(app: &dyn WorkflowApp, mode: Mode, opts: &ExploreOptions) -> ExploreReport {
    let (oracle, oracle_env) = run_schedule(app, mode, opts, &[], true);
    // Raw-forensics snapshot of the oracle, taken only once a schedule
    // actually diverges (clean sweeps never pay for it).
    let mut oracle_snapshot: Option<DbSnapshot> = None;
    let mut report = ExploreReport {
        app: app.kind().to_owned(),
        mode,
        seed: opts.seed,
        requests: opts.requests,
        crash_points: oracle.trace.len(),
        schedules: 0,
        crashes_injected: 0,
        oracle_effects: oracle.effects,
        violations: Vec::new(),
    };
    if !oracle.errors.is_empty() || oracle.unfinished != 0 {
        report.violations.push(Violation {
            kind: ViolationKind::RequestError,
            schedule: Vec::new(),
            label: "<oracle>".to_owned(),
            detail: format!(
                "crash-free oracle run failed: errors={:?} unfinished={}",
                oracle.errors, oracle.unfinished
            ),
        });
        return report;
    }

    // Baseline mode makes no exactly-once claim: a crashed instance is
    // simply lost (or, if the provider retried it, duplicated — the §2.1
    // anomaly `fault_tolerance.rs` documents). There is no guarantee to
    // verify, so the sweep stops at the oracle.
    if mode == Mode::Baseline {
        return report;
    }

    // Depth 1: one schedule per (strided) crash point.
    let stride = opts.stride.max(1);
    let mut schedules: Vec<Vec<u64>> = (0..oracle.trace.len() as u64)
        .step_by(stride)
        .map(|k| vec![k])
        .collect();
    if let Some(cap) = opts.max_depth1 {
        schedules.truncate(cap);
    }

    // Depth 2: seeded pairs [i, i+gap]; the second crash lands during the
    // recovery of the first (the global stream keeps counting across
    // re-executions).
    let mut pair_rng = SmallRng::seed_from_u64(opts.seed ^ 0xD2D2_D2D2);
    for _ in 0..opts.depth2_samples {
        if oracle.trace.is_empty() {
            break;
        }
        let i = pair_rng.gen_range(0..oracle.trace.len()) as u64;
        let gap = pair_rng.gen_range(1..25usize) as u64;
        schedules.push(vec![i, i + gap]);
    }

    for schedule in schedules {
        report.schedules += 1;
        let (out, run_env) = run_schedule(app, mode, opts, &schedule, false);
        report.crashes_injected += out.injected;
        let label = schedule
            .first()
            .and_then(|&k| oracle.trace.get(k as usize))
            .map(|t| t.label.clone())
            .unwrap_or_default();
        let mut fail = |kind, detail| {
            report.violations.push(Violation {
                kind,
                schedule: schedule.clone(),
                label: label.clone(),
                detail,
            });
        };
        if !out.errors.is_empty() {
            fail(ViolationKind::RequestError, out.errors.join("; "));
        }
        if out.unfinished != 0 {
            fail(
                ViolationKind::IncompleteRecovery,
                format!(
                    "{} unfinished intent(s) after {DRAIN_PASSES} passes",
                    out.unfinished
                ),
            );
        }
        if out.injected == 0 {
            // Up to the first scheduled step the run replays the oracle
            // exactly, so the crash must fire; anything else means the
            // schedule itself is nondeterministic.
            fail(
                ViolationKind::NoCrashInjected,
                "scheduled crash point was never reached".to_owned(),
            );
        }
        if out.state != oracle.state {
            // Pinpoint the rows via the raw snapshot diff, keeping only
            // application tables (metadata legitimately differs).
            let (app_diff, _meta) = oracle_snapshot
                .get_or_insert_with(|| oracle_env.db().snapshot())
                .diff(&run_env.db().snapshot())
                .split(schema::is_meta_table);
            fail(
                ViolationKind::StateDivergence,
                format!(
                    "canonical state differs from oracle; raw app-table diff: {}",
                    app_diff.summarize(4)
                ),
            );
        }
        if out.effects != oracle.effects {
            fail(
                ViolationKind::EffectDivergence,
                format!("effects {} != oracle {}", out.effects, oracle.effects),
            );
        }
        if let Some(residue) = out.gc_residue {
            fail(ViolationKind::GcResidue, residue);
        }
    }
    report
}

//! Open-loop constant-rate execution (wrk2 semantics).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use beldi_simclock::{SharedClock, SimInstant};
use parking_lot::Mutex;

use crate::histogram::{Histogram, Percentiles};

/// A request issued by the runner: receives the request index, returns
/// whether it succeeded.
pub type Request = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Open-loop constant-rate load runner.
///
/// Arrival times are fixed up front at `1/rate` spacing (virtual time);
/// a pool of issuer threads executes them, and each latency is measured
/// from the request's *intended* arrival — so a backlog shows up as
/// latency (no coordinated omission), exactly like wrk2 with a fixed
/// connection count.
pub struct RateRunner {
    clock: SharedClock,
    rate_per_sec: f64,
    duration: Duration,
    issuers: usize,
}

/// Result of one constant-rate run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The configured arrival rate (requests per virtual second).
    pub offered_rate: f64,
    /// Completions per virtual second actually achieved.
    pub achieved_rate: f64,
    /// Requests that returned failure.
    pub errors: u64,
    /// Latency percentile summary.
    pub latency: Percentiles,
    /// The full histogram (for custom quantiles).
    pub histogram: Histogram,
}

impl RateRunner {
    /// Creates a runner issuing `rate_per_sec` requests per virtual second
    /// for `duration` (virtual), from a pool of `issuers` threads.
    ///
    /// # Panics
    ///
    /// Panics when `rate_per_sec` is not positive or `issuers` is zero.
    pub fn new(clock: SharedClock, rate_per_sec: f64, duration: Duration, issuers: usize) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(issuers > 0, "need at least one issuer");
        RateRunner {
            clock,
            rate_per_sec,
            duration,
            issuers,
        }
    }

    /// Executes the run and collects latencies.
    pub fn run(&self, request: Request) -> RunReport {
        let total = (self.rate_per_sec * self.duration.as_secs_f64()).floor() as u64;
        let interval_ns = (1e9 / self.rate_per_sec) as u64;
        let start = self.clock.now();
        let next = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let hist = Arc::new(Mutex::new(Histogram::new()));

        let mut handles = Vec::with_capacity(self.issuers);
        for _ in 0..self.issuers {
            let clock = self.clock.clone();
            let next = Arc::clone(&next);
            let errors = Arc::clone(&errors);
            let done = Arc::clone(&done);
            let hist = Arc::clone(&hist);
            let request = Arc::clone(&request);
            handles.push(std::thread::spawn(move || {
                let mut local = Histogram::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let intended = start.plus(Duration::from_nanos(i * interval_ns));
                    sleep_until(&clock, intended);
                    let ok = request(i);
                    let latency = clock.now().since(intended);
                    local.record(latency);
                    if !ok {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
                hist.lock().merge(&local);
            }));
        }
        for h in handles {
            h.join().expect("issuer thread panicked");
        }

        let elapsed = self.clock.now().since(start).as_secs_f64().max(1e-9);
        let histogram = hist.lock().clone();
        RunReport {
            offered_rate: self.rate_per_sec,
            achieved_rate: done.load(Ordering::Relaxed) as f64 / elapsed,
            errors: errors.load(Ordering::Relaxed),
            latency: histogram.percentiles(),
            histogram,
        }
    }
}

/// Sleeps (in virtual time) until `deadline`; returns immediately when
/// already past it (the behind-schedule case the latency then reflects).
fn sleep_until(clock: &SharedClock, deadline: SimInstant) {
    let now = clock.now();
    if now < deadline {
        clock.sleep(deadline.since(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beldi_simclock::ScaledClock;

    #[test]
    fn issues_the_scheduled_number_of_requests() {
        let clock = ScaledClock::shared(1000.0);
        let runner = RateRunner::new(clock, 100.0, Duration::from_secs(2), 4);
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let report = runner.run(Arc::new(move |_| {
            c.fetch_add(1, Ordering::Relaxed);
            true
        }));
        assert_eq!(count.load(Ordering::Relaxed), 200);
        assert_eq!(report.latency.count, 200);
        assert_eq!(report.errors, 0);
        assert!(report.achieved_rate > 50.0, "{}", report.achieved_rate);
    }

    #[test]
    fn errors_are_counted() {
        let clock = ScaledClock::shared(1000.0);
        let runner = RateRunner::new(clock, 50.0, Duration::from_secs(1), 2);
        let report = runner.run(Arc::new(|i| i % 5 != 0));
        assert_eq!(report.errors, 10);
    }

    #[test]
    fn slow_requests_inflate_latency_not_rate_accounting() {
        // Each request takes 40ms virtual but arrivals come every 10ms
        // from 2 issuers: the backlog must appear as latency growth.
        let clock = ScaledClock::shared(1000.0);
        let runner = RateRunner::new(clock.clone(), 100.0, Duration::from_secs(1), 2);
        let c2 = clock.clone();
        let report = runner.run(Arc::new(move |_| {
            c2.sleep(Duration::from_millis(40));
            true
        }));
        assert_eq!(report.latency.count, 100);
        // p99 sees queueing delay far above the 40ms service time.
        assert!(
            report.latency.p99 > Duration::from_millis(200),
            "p99 = {:?}",
            report.latency.p99
        );
        // And p50 is also above service time (steady backlog).
        assert!(report.latency.p50 >= Duration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let clock = ScaledClock::shared(1000.0);
        let _ = RateRunner::new(clock, 0.0, Duration::from_secs(1), 1);
    }
}

//! Log-bucketed latency histograms (HdrHistogram-style, as wrk2 records).

use std::time::Duration;

/// Number of sub-buckets per power of two: trades memory for resolution.
/// 32 sub-buckets keep relative error under ~3%, ample for p50/p99 shapes.
const SUB_BUCKETS: usize = 32;
/// Covers 2^0 .. 2^40 microseconds (~12 days) — every plausible latency.
const MAX_EXP: usize = 40;

/// A log-bucketed histogram of durations with percentile queries.
///
/// Values are recorded in microseconds into geometrically growing buckets,
/// so percentile queries have bounded relative error at any magnitude —
/// the same trade HdrHistogram (used by wrk2) makes.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max_us: u64,
    min_us: u64,
    sum_us: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; SUB_BUCKETS * (MAX_EXP + 1)],
            total: 0,
            max_us: 0,
            min_us: u64::MAX,
            sum_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        let us = us.max(1);
        let exp = (63 - us.leading_zeros()) as usize;
        if exp >= MAX_EXP {
            return SUB_BUCKETS * (MAX_EXP + 1) - 1;
        }
        // Position within the power-of-two range, scaled to sub-buckets.
        let base = 1u64 << exp;
        let frac = ((us - base) as u128 * SUB_BUCKETS as u128 / base as u128) as usize;
        exp * SUB_BUCKETS + frac.min(SUB_BUCKETS - 1)
    }

    fn bucket_value(idx: usize) -> u64 {
        let exp = idx / SUB_BUCKETS;
        let frac = idx % SUB_BUCKETS;
        let base = 1u64 << exp;
        // Upper edge of the sub-bucket: conservative (never understates).
        base + (base as u128 * (frac as u128 + 1) / SUB_BUCKETS as u128) as u64
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        self.max_us = self.max_us.max(us);
        self.min_us = self.min_us.min(us);
        self.sum_us += us as u128;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q` in `[0, 1]` (e.g. `0.99`).
    ///
    /// Returns `Duration::ZERO` for an empty histogram. Exact for the min
    /// and max; bounded relative error elsewhere.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let v = Self::bucket_value(idx).min(self.max_us).max(self.min_us);
                return Duration::from_micros(v);
            }
        }
        Duration::from_micros(self.max_us)
    }

    /// Maximum recorded value.
    pub fn max(&self) -> Duration {
        Duration::from_micros(if self.total == 0 { 0 } else { self.max_us })
    }

    /// Minimum recorded value.
    pub fn min(&self) -> Duration {
        Duration::from_micros(if self.total == 0 { 0 } else { self.min_us })
    }

    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_us / self.total as u128) as u64)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }

    /// The standard percentile summary used by the figure harnesses.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
            mean: self.mean(),
            count: self.total,
        }
    }
}

/// p50/p90/p99/max/mean summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
    /// Mean.
    pub mean: Duration,
    /// Sample count.
    pub count: u64,
}

impl std::fmt::Display for Percentiles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count,
            self.p50.as_secs_f64() * 1e3,
            self.p90.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn single_value_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(Duration::from_millis(5));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            let err = (v.as_micros() as f64 - 5_000.0).abs() / 5_000.0;
            assert!(err < 0.05, "q={q}: {v:?}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i * 100)); // 0.1ms .. 100ms
        }
        let p50 = h.quantile(0.5).as_micros() as f64;
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.06, "p50 = {p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.06, "p99 = {p99}");
        assert_eq!(h.len(), 1000);
    }

    #[test]
    fn min_max_exact() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(123));
        h.record(Duration::from_millis(40));
        assert_eq!(h.min(), Duration::from_micros(123));
        assert_eq!(h.max(), Duration::from_millis(40));
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..100 {
            a.record(Duration::from_millis(1));
            b.record(Duration::from_millis(100));
        }
        a.merge(&b);
        assert_eq!(a.len(), 200);
        let p50 = a.quantile(0.50);
        // Median of the merged population sits at the low mode's edge.
        assert!(p50 <= Duration::from_millis(2), "{p50:?}");
        let p99 = a.quantile(0.99);
        assert!(p99 >= Duration::from_millis(90), "{p99:?}");
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1 << 30));
        assert_eq!(h.len(), 2);
        let _ = h.quantile(0.5);
    }
}

//! The closed-loop concurrent workload driver (`BENCH_results.json`).
//!
//! Where [`crate::RateRunner`] reproduces wrk2's *open-loop* arrivals for
//! the paper's latency-vs-throughput figures, this module measures the
//! system the way a capacity benchmark does: `N` client workers share one
//! [`BeldiEnv`] (and therefore one sharded database) and each issues the
//! next request the moment the previous one completes. Throughput is
//! whatever the system sustains; latency is pure service time.
//!
//! Design points:
//!
//! - **Virtual time.** The environment runs on a scaled clock with the
//!   DynamoDB-shaped latency model, so reported latencies/throughput are
//!   dominated by *modelled* storage round trips, not host speed —
//!   numbers are comparable across machines, which is what lets CI gate
//!   on them (`tools/bench_gate.rs`).
//! - **Determinism.** The request stream is split up front: worker `w`
//!   gets a fixed share of `total_ops` and its own seeded RNG
//!   ([`worker_rng`]), so the *multiset* of issued requests is a pure
//!   function of `(seed, workers, total_ops)` regardless of scheduling.
//!   Combined with the apps' interleaving-invariant
//!   [`WorkflowApp::bench_fingerprint`] projections, the whole
//!   [`BenchRun`] — op counts, per-kind database deltas, final-state
//!   digest — reproduces exactly for a fixed seed and worker count.
//! - **Metrics windows.** The database counters are
//!   [`reset`](beldi_simdb::Database::reset_metrics) after setup/seeding,
//!   so [`BenchRun::db`] is exactly the measured run's operation delta
//!   (the consistent-snapshot contract is `DbMetrics::snapshot`'s).
//!
//! Reports serialize to JSON via `beldi_value::json` (see `DESIGN.md` §9
//! for the schema) and read back for the CI regression gate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use beldi::value::{vmap, Map, Value};
use beldi::{schema, BeldiConfig, BeldiEnv, Mode};
use beldi_apps::WorkflowApp;
use beldi_simdb::{LatencyModel, MetricsSnapshot};
use beldi_simfaas::{PlatformConfig, SaturationPolicy, StormPolicy};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::explore::mode_name;
use crate::histogram::Histogram;

/// Report schema version (bumped on incompatible JSON changes).
pub const BENCH_SCHEMA: i64 = 1;

/// Which execution engine drives the request load.
///
/// The two engines issue the *same* request multiset (same per-worker
/// seeded streams) through the same protocol paths, so their final-state
/// digests must match — `tests/driver.rs` pins that equivalence. They
/// differ only in how waiting is implemented:
///
/// - [`Thread`](RuntimeKind::Thread): one OS thread per client worker,
///   each blocking on its in-flight request (the original closed-loop
///   path, and the default — its report JSON is byte-identical to
///   pre-async builds).
/// - [`Async`](RuntimeKind::Async): every request becomes one
///   cooperative task on a [`beldi_runtime`] executor, all spawned up
///   front — tens of thousands of in-flight workflows park on wakers
///   instead of holding OS threads, and the run records an
///   [`InFlightSeries`] proving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// Thread-per-worker closed loop (default).
    #[default]
    Thread,
    /// Task-per-request cooperative executor.
    Async,
}

impl RuntimeKind {
    /// CLI / report spelling.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::Thread => "thread",
            RuntimeKind::Async => "async",
        }
    }

    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// A message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "thread" => Ok(RuntimeKind::Thread),
            "async" => Ok(RuntimeKind::Async),
            other => Err(format!(
                "unknown runtime '{other}' (expected 'thread' or 'async')"
            )),
        }
    }
}

/// Tuning knobs for one [`drive`] call.
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Concurrent client workers sharing the environment.
    pub workers: usize,
    /// Total requests across all workers (split deterministically).
    pub total_ops: u64,
    /// Seed for the substrate RNGs and every worker's request stream.
    pub seed: u64,
    /// Database partitions (the sharding knob under test).
    pub partitions: usize,
    /// Virtual-clock rate (× real time). Modest rates keep host CPU cost
    /// a small fraction of the modelled latencies; the smoke preset uses
    /// a low rate for CI stability.
    pub clock_rate: f64,
    /// Apply the DynamoDB-shaped latency model (off = zero-latency
    /// storage, for functional tests).
    pub model_latency: bool,
    /// Enable the DAAL tail-row cache (the measured hot-path fix; off
    /// restores the always-scan read path for A/B comparison).
    pub tail_cache: bool,
    /// Total DAAL tail-cache entry capacity (`None` = the library
    /// default; small values A/B the eviction behaviour).
    pub tail_cache_capacity: Option<usize>,
    /// Route unconditional DAAL appends through the write combiner
    /// (group commit over the tail row; Beldi mode only, off = the
    /// uncombined paper protocol for A/B comparison).
    pub write_combine: bool,
    /// Serve traversal reads from per-instance table snapshots instead
    /// of per-key tail scans (Beldi mode only).
    pub snapshot_reads: bool,
    /// Run timer-triggered per-SSF garbage collectors *concurrently with
    /// the client workers* (online GC, paper §5): background collector
    /// functions fire every [`DriveOptions::gc_period`] of virtual time
    /// while the workers drive load, and the run records a
    /// storage-growth series ([`StorageSeries`]) proving the DAAL/log
    /// tables reach a steady-state plateau instead of growing without
    /// bound.
    pub gc: bool,
    /// Virtual-time period of the GC timers (and half the storage
    /// sampling period).
    pub gc_period: Duration,
    /// `T` (max SSF lifetime) for GC-enabled runs — small relative to
    /// the run's virtual duration, so recycling reaches steady state
    /// within the measured window.
    pub gc_t_max: Duration,
    /// Platform concurrency cap override (`None` = the driver default of
    /// 1000). The async in-flight stress tests pin this *low* to prove
    /// the point of the cooperative runtime: 10k parked workflows over a
    /// few dozen worker threads.
    pub platform_concurrency: Option<usize>,
    /// Chaos-production mode (`None` = no fault injection): a seeded
    /// crash storm kills SSF instances *and* IC/GC collector passes
    /// mid-flight while the client workers push the normal request mix,
    /// with both collectors running on timers. The run then verifies the
    /// end state against a crash-free oracle drive of the same request
    /// stream and records a [`RecoverySection`]. Ignored in baseline
    /// mode, which has no recovery machinery to exercise.
    pub chaos: Option<ChaosOptions>,
}

/// Crash-storm knobs for a chaos drive (see [`DriveOptions::chaos`]).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Kill probability at each eligible SSF crash point.
    pub ssf_kill_prob: f64,
    /// Kill probability at each eligible collector (`ic.*`/`gc.*`)
    /// crash point.
    pub collector_kill_prob: f64,
    /// Hard cap on injected crashes. Determinism tests set this far
    /// above the expected crash count so the (interleaving-ordered) cap
    /// check never shapes the schedule.
    pub max_crashes: u64,
    /// IC restart delay for the run — short, so recovery latencies are
    /// dominated by detection + re-execution rather than the paper's
    /// production 30 s back-off.
    pub ic_restart_delay: Duration,
    /// `T_max` for the run (virtual). Chaos runs enforce the platform's
    /// execution-timeout contract in the wrapper
    /// ([`beldi::BeldiConfig::enforce_t_max`]) — the bound Beldi's GC
    /// safety argument requires once crashes make concurrent duplicate
    /// executions routine — so this must comfortably exceed the slowest
    /// instance's execution time or retry storms livelock on the lease.
    /// It also bounds the client side: root retries stop `T_max` after
    /// the first attempt, and GC recycles a done intent no earlier than
    /// `finish + 2·T_max`, so no retry (nor any zombie's final in-flight
    /// write) can land after its logs were pruned. At long-run scale
    /// (heavy queueing, modelled latency) size this against the observed
    /// request-latency tail, not the smoke defaults.
    pub t_max: Duration,
    /// Re-launch killed intents (root retries + IC timers + post-run
    /// recovery drain). `false` is the sabotage configuration for the
    /// canary tests: killed workflows stay dead, so the conservation
    /// gates must fail.
    pub relaunch: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            ssf_kill_prob: 5e-4,
            collector_kill_prob: 4e-3,
            max_crashes: 10_000,
            ic_restart_delay: Duration::from_millis(100),
            // Comfortably above the smoke-scale latency tail (~30 s
            // virtual): the lease should catch genuine zombies, not
            // routinely kill slow-but-healthy instances.
            t_max: Duration::from_secs(60),
            relaunch: true,
        }
    }
}

impl Default for DriveOptions {
    fn default() -> Self {
        DriveOptions {
            workers: 4,
            total_ops: 1_000,
            seed: 42,
            partitions: beldi_simdb::DEFAULT_PARTITIONS,
            clock_rate: 120.0,
            model_latency: true,
            tail_cache: true,
            tail_cache_capacity: None,
            write_combine: false,
            snapshot_reads: false,
            gc: false,
            gc_period: Duration::from_millis(500),
            gc_t_max: Duration::from_secs(2),
            platform_concurrency: None,
            chaos: None,
        }
    }
}

/// Latency percentile summary in microseconds (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Mean.
    pub mean_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencySummary {
    fn from_histogram(h: &Histogram) -> Self {
        let us = |d: Duration| d.as_micros() as u64;
        LatencySummary {
            p50_us: us(h.quantile(0.50)),
            p90_us: us(h.quantile(0.90)),
            p95_us: us(h.quantile(0.95)),
            p99_us: us(h.quantile(0.99)),
            mean_us: us(h.mean()),
            max_us: us(h.max()),
        }
    }

    fn to_value(self) -> Value {
        vmap! {
            "p50_us" => self.p50_us as i64,
            "p90_us" => self.p90_us as i64,
            "p95_us" => self.p95_us as i64,
            "p99_us" => self.p99_us as i64,
            "mean_us" => self.mean_us as i64,
            "max_us" => self.max_us as i64,
        }
    }

    fn from_value(v: &Value) -> Self {
        let get = |k: &str| v.get_int(k).unwrap_or(0) as u64;
        LatencySummary {
            p50_us: get("p50_us"),
            p90_us: get("p90_us"),
            p95_us: get("p95_us"),
            p99_us: get("p99_us"),
            mean_us: get("mean_us"),
            max_us: get("max_us"),
        }
    }
}

/// One storage-growth observation, taken on virtual time during a run.
///
/// Sampling is observational (it reads partition map sizes without
/// touching the latency model or metrics) and, like `wall_ms`, excluded
/// from the determinism contract: sample *timing* depends on host
/// scheduling even though the run's final state does not.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StorageSample {
    /// Virtual microseconds since the measurement window opened.
    pub t_us: u64,
    /// Total rows across Beldi metadata tables (intent, read/invoke/
    /// write logs, shadow tables) — the storage GC exists to bound.
    pub meta_rows: u64,
    /// Total rows across application data tables (DAAL rows in Beldi
    /// mode; one row per key otherwise).
    pub data_rows: u64,
    /// Cumulative completed GC passes at sample time.
    pub gc_passes: u64,
    /// Cumulative intents recycled.
    pub gc_recycled: u64,
    /// Cumulative log entries deleted.
    pub gc_deleted_log_entries: u64,
    /// Cumulative DAAL/shadow rows deleted.
    pub gc_deleted_rows: u64,
    /// Cumulative corrupt (cyclic) chains encountered — any non-zero
    /// value is a red flag.
    pub gc_corrupt_chains: u64,
    /// Cumulative completed intent-collector passes at sample time
    /// (zero unless the run started the IC timers, i.e. chaos mode).
    pub ic_passes: u64,
    /// Cumulative instances re-launched by the IC.
    pub ic_restarted: u64,
    /// Cumulative corrupt (envelope-less) intents quarantined by the IC
    /// — `gc_corrupt_chains`'s twin; any non-zero value is a red flag.
    pub ic_corrupt: u64,
    /// Per-table row counts, sorted by table name.
    pub tables: BTreeMap<String, u64>,
}

impl StorageSample {
    fn to_value(&self) -> Value {
        let mut tables = Map::new();
        for (name, rows) in &self.tables {
            tables.insert(name.clone(), Value::Int(*rows as i64));
        }
        vmap! {
            "t_us" => self.t_us as i64,
            "meta_rows" => self.meta_rows as i64,
            "data_rows" => self.data_rows as i64,
            "gc_passes" => self.gc_passes as i64,
            "gc_recycled" => self.gc_recycled as i64,
            "gc_deleted_log_entries" => self.gc_deleted_log_entries as i64,
            "gc_deleted_rows" => self.gc_deleted_rows as i64,
            "gc_corrupt_chains" => self.gc_corrupt_chains as i64,
            "ic_passes" => self.ic_passes as i64,
            "ic_restarted" => self.ic_restarted as i64,
            "ic_corrupt" => self.ic_corrupt as i64,
            "tables" => Value::Map(tables),
        }
    }

    fn from_value(v: &Value) -> Self {
        let get = |k: &str| v.get_int(k).unwrap_or(0) as u64;
        let tables = v
            .get_attr("tables")
            .and_then(Value::as_map)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_int().map(|n| (k.clone(), n as u64)))
                    .collect()
            })
            .unwrap_or_default();
        StorageSample {
            t_us: get("t_us"),
            meta_rows: get("meta_rows"),
            data_rows: get("data_rows"),
            gc_passes: get("gc_passes"),
            gc_recycled: get("gc_recycled"),
            gc_deleted_log_entries: get("gc_deleted_log_entries"),
            gc_deleted_rows: get("gc_deleted_rows"),
            gc_corrupt_chains: get("gc_corrupt_chains"),
            ic_passes: get("ic_passes"),
            ic_restarted: get("ic_restarted"),
            ic_corrupt: get("ic_corrupt"),
            tables,
        }
    }
}

/// The storage-growth record of one run: periodic [`StorageSample`]s
/// plus end-of-run DAAL statistics. See `DESIGN.md` §10 for how the CI
/// growth gate consumes this.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StorageSeries {
    /// Samples in time order; the last one is taken after the workers
    /// finish (the steady-state endpoint the growth gate checks).
    pub samples: Vec<StorageSample>,
    /// Longest DAAL chain (rows reachable from `HEAD`) across every
    /// Beldi data-table key at the end of the run; zero in non-Beldi
    /// modes.
    pub max_chain_len: u64,
}

impl StorageSeries {
    fn to_value(&self) -> Value {
        vmap! {
            "samples" => Value::List(self.samples.iter().map(StorageSample::to_value).collect()),
            "max_chain_len" => self.max_chain_len as i64,
        }
    }

    fn from_value(v: &Value) -> Self {
        StorageSeries {
            samples: v
                .get_list("samples")
                .map(|l| l.iter().map(StorageSample::from_value).collect())
                .unwrap_or_default(),
            max_chain_len: v.get_int("max_chain_len").unwrap_or(0) as u64,
        }
    }
}

/// One in-flight observation from an async drive: how many executor
/// tasks were live at a moment of virtual time.
///
/// "Live" counts every unfinished task on the run's executor — parked
/// request workflows (the overwhelming majority), plus the handful of
/// collector tasks and the drive's own await-all task. Like
/// [`StorageSample`] timing, the sample *schedule* is observational and
/// outside the determinism contract; the high-water mark is not (it is
/// read at a fixed point, right after the spawn loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InFlightSample {
    /// Virtual microseconds since the measurement window opened.
    pub t_us: u64,
    /// Live executor tasks at sample time.
    pub live: u64,
}

/// The in-flight record of one async drive ([`RuntimeKind::Async`]
/// only): periodic [`InFlightSample`]s plus the high-water mark.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InFlightSeries {
    /// Samples in time order.
    pub samples: Vec<InFlightSample>,
    /// Maximum concurrent live tasks: the deterministic post-spawn
    /// reading (every request task is in flight at that point) or the
    /// largest sample, whichever is greater. The ≥10k acceptance gate
    /// reads this.
    pub high_water: u64,
}

impl InFlightSeries {
    fn to_value(&self) -> Value {
        let samples = self
            .samples
            .iter()
            .map(|s| vmap! { "t_us" => s.t_us as i64, "live" => s.live as i64 })
            .collect();
        vmap! {
            "samples" => Value::List(samples),
            "high_water" => self.high_water as i64,
        }
    }

    fn from_value(v: &Value) -> Self {
        InFlightSeries {
            samples: v
                .get_list("samples")
                .map(|l| {
                    l.iter()
                        .map(|s| InFlightSample {
                            t_us: s.get_int("t_us").unwrap_or(0) as u64,
                            live: s.get_int("live").unwrap_or(0) as u64,
                        })
                        .collect()
                })
                .unwrap_or_default(),
            high_water: v.get_int("high_water").unwrap_or(0) as u64,
        }
    }
}

/// The recovery record of one chaos drive: what the storm did, how fast
/// killed workflows came back, and whether the end state matches a
/// crash-free oracle run of the same request stream.
///
/// Recovery latency is defined on **virtual time**: for every instance
/// the injector killed at least once and that reached `Done`, the
/// intent-creation → Done interval, recorded once per instance. The
/// percentiles below summarize those samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverySection {
    /// Total crashes the storm injected.
    pub injected_crashes: u64,
    /// Instance restarts observed by the injector (re-executions of an
    /// already-seen instance id — root retries, IC re-launches, and
    /// collector passes resuming after a kill).
    pub restarts: u64,
    /// Injected crashes per crash-point label, sorted by label.
    pub crash_sites: BTreeMap<String, u64>,
    /// Completed IC passes (timer-triggered plus the post-run drain).
    pub ic_passes: u64,
    /// Instances the IC re-launched.
    pub ic_restarted: u64,
    /// IC passes killed mid-flight by the storm.
    pub ic_crashes: u64,
    /// GC passes killed mid-flight by the storm.
    pub gc_crashes: u64,
    /// Corrupt (envelope-less) intents the IC quarantined — zero in a
    /// healthy system.
    pub ic_corrupt: u64,
    /// Killed instances that reached `Done` (the recovery-latency
    /// sample count).
    pub recovered_intents: u64,
    /// Median recovery latency, virtual ms.
    pub recovery_p50_ms: u64,
    /// 90th-percentile recovery latency, virtual ms.
    pub recovery_p90_ms: u64,
    /// 99th-percentile recovery latency, virtual ms.
    pub recovery_p99_ms: u64,
    /// Effects the chaos run produced beyond the oracle run (clamped at
    /// zero from below; lost effects surface as a digest mismatch
    /// instead). Exactly-once demands zero.
    pub duplicate_effects: i64,
    /// The oracle run's state digest.
    pub oracle_digest: String,
    /// Whether the chaos run's conservation digest equals the oracle's.
    pub digest_match: bool,
}

impl RecoverySection {
    fn to_value(&self) -> Value {
        let mut sites = Map::new();
        for (label, n) in &self.crash_sites {
            sites.insert(label.clone(), Value::Int(*n as i64));
        }
        vmap! {
            "injected_crashes" => self.injected_crashes as i64,
            "restarts" => self.restarts as i64,
            "crash_sites" => Value::Map(sites),
            "ic_passes" => self.ic_passes as i64,
            "ic_restarted" => self.ic_restarted as i64,
            "ic_crashes" => self.ic_crashes as i64,
            "gc_crashes" => self.gc_crashes as i64,
            "ic_corrupt" => self.ic_corrupt as i64,
            "recovered_intents" => self.recovered_intents as i64,
            "recovery_p50_ms" => self.recovery_p50_ms as i64,
            "recovery_p90_ms" => self.recovery_p90_ms as i64,
            "recovery_p99_ms" => self.recovery_p99_ms as i64,
            "duplicate_effects" => self.duplicate_effects,
            "oracle_digest" => self.oracle_digest.as_str(),
            "digest_match" => self.digest_match,
        }
    }

    fn from_value(v: &Value) -> Self {
        let get = |k: &str| v.get_int(k).unwrap_or(0) as u64;
        let crash_sites = v
            .get_attr("crash_sites")
            .and_then(Value::as_map)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_int().map(|n| (k.clone(), n as u64)))
                    .collect()
            })
            .unwrap_or_default();
        RecoverySection {
            injected_crashes: get("injected_crashes"),
            restarts: get("restarts"),
            crash_sites,
            ic_passes: get("ic_passes"),
            ic_restarted: get("ic_restarted"),
            ic_crashes: get("ic_crashes"),
            gc_crashes: get("gc_crashes"),
            ic_corrupt: get("ic_corrupt"),
            recovered_intents: get("recovered_intents"),
            recovery_p50_ms: get("recovery_p50_ms"),
            recovery_p90_ms: get("recovery_p90_ms"),
            recovery_p99_ms: get("recovery_p99_ms"),
            duplicate_effects: v.get_int("duplicate_effects").unwrap_or(0),
            oracle_digest: v.get_str("oracle_digest").unwrap_or_default().to_owned(),
            digest_match: v.get_bool("digest_match").unwrap_or(false),
        }
    }
}

/// The result of one `app × mode × workers` drive.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// App driven ("media" / "social" / "travel").
    pub app: String,
    /// Table/logging mode (CLI spelling, e.g. "beldi").
    pub mode: String,
    /// Concurrent client workers.
    pub workers: usize,
    /// Database partitions.
    pub partitions: usize,
    /// Requests issued (all of them complete — closed loop).
    pub ops: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Virtual time the run took, in microseconds.
    pub elapsed_virtual_us: u64,
    /// Wall-clock milliseconds (informational; machine-dependent and
    /// excluded from all comparisons).
    pub wall_ms: u64,
    /// Completions per virtual second.
    pub throughput_rps: f64,
    /// Per-request service latency (virtual).
    pub latency: LatencySummary,
    /// Database operation delta over the measured window.
    pub db: MetricsSnapshot,
    /// FNV-1a digest (hex) of the app's interleaving-invariant final
    /// state fingerprint — equal across runs with the same seed and
    /// worker count.
    pub state_digest: String,
    /// The app's effect count after the run.
    pub effects: i64,
    /// Whether online GC ran concurrently with the workers.
    pub gc: bool,
    /// Storage-growth series (always recorded; sampled densely when GC
    /// is on, final-only otherwise).
    pub storage: StorageSeries,
    /// Which engine drove the load. Thread runs serialize *without* a
    /// `runtime` key so their report JSON stays byte-identical to
    /// pre-async builds.
    pub runtime: RuntimeKind,
    /// In-flight task series (`Some` only for async drives).
    pub in_flight: Option<InFlightSeries>,
    /// Recovery record (`Some` only for chaos drives).
    pub recovery: Option<RecoverySection>,
}

impl BenchRun {
    /// The identity CI matches baseline and current runs on. Async runs
    /// get a distinct suffix so the two engines' numbers (which have
    /// different latency semantics — spawn-all queueing vs closed loop)
    /// can never be compared against each other by accident.
    pub fn key(&self) -> String {
        match self.runtime {
            RuntimeKind::Thread => format!("{}/{}/w{}", self.app, self.mode, self.workers),
            RuntimeKind::Async => format!("{}/{}/w{}@async", self.app, self.mode, self.workers),
        }
    }

    /// Serializes the run for the JSON report.
    pub fn to_value(&self) -> Value {
        let mut v = vmap! {
            "app" => self.app.as_str(),
            "mode" => self.mode.as_str(),
            "workers" => self.workers as i64,
            "partitions" => self.partitions as i64,
            "ops" => self.ops as i64,
            "errors" => self.errors as i64,
            "elapsed_virtual_us" => self.elapsed_virtual_us as i64,
            "wall_ms" => self.wall_ms as i64,
            "throughput_rps" => self.throughput_rps,
            "latency" => self.latency.to_value(),
            "db" => metrics_to_value(&self.db),
            "state_digest" => self.state_digest.as_str(),
            "effects" => self.effects,
            "gc" => self.gc,
            "storage" => self.storage.to_value(),
        };
        if let Value::Map(m) = &mut v {
            // Async-only keys: absent from thread runs so the default
            // engine's report stays byte-identical to pre-async builds.
            if self.runtime != RuntimeKind::Thread {
                m.insert("runtime".into(), Value::Str(self.runtime.name().into()));
            }
            if let Some(in_flight) = &self.in_flight {
                m.insert("in_flight".into(), in_flight.to_value());
            }
            if let Some(recovery) = &self.recovery {
                m.insert("recovery".into(), recovery.to_value());
            }
        }
        v
    }

    /// Decodes a run from report JSON (tolerant of missing fields, which
    /// decode as zero/empty — the gate validates what it needs).
    pub fn from_value(v: &Value) -> Self {
        BenchRun {
            app: v.get_str("app").unwrap_or_default().to_owned(),
            mode: v.get_str("mode").unwrap_or_default().to_owned(),
            workers: v.get_int("workers").unwrap_or(0) as usize,
            partitions: v.get_int("partitions").unwrap_or(0) as usize,
            ops: v.get_int("ops").unwrap_or(0) as u64,
            errors: v.get_int("errors").unwrap_or(0) as u64,
            elapsed_virtual_us: v.get_int("elapsed_virtual_us").unwrap_or(0) as u64,
            wall_ms: v.get_int("wall_ms").unwrap_or(0) as u64,
            throughput_rps: v
                .get_attr("throughput_rps")
                .and_then(Value::as_float)
                .unwrap_or(0.0),
            latency: v
                .get_attr("latency")
                .map(LatencySummary::from_value)
                .unwrap_or_default(),
            db: v.get_attr("db").map(metrics_from_value).unwrap_or_default(),
            state_digest: v.get_str("state_digest").unwrap_or_default().to_owned(),
            effects: v.get_int("effects").unwrap_or(0),
            gc: v.get_bool("gc").unwrap_or(false),
            storage: v
                .get_attr("storage")
                .map(StorageSeries::from_value)
                .unwrap_or_default(),
            runtime: v
                .get_str("runtime")
                .and_then(|s| RuntimeKind::parse(s).ok())
                .unwrap_or_default(),
            in_flight: v.get_attr("in_flight").map(InFlightSeries::from_value),
            recovery: v.get_attr("recovery").map(RecoverySection::from_value),
        }
    }
}

/// A full driver session: configuration plus one [`BenchRun`] per
/// `app × mode × workers` point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The seed all runs used.
    pub seed: u64,
    /// Requests per run.
    pub total_ops: u64,
    /// The mix preset name ("default" / "write-heavy").
    pub mix: String,
    /// Virtual-clock rate used.
    pub clock_rate: f64,
    /// Whether the tail cache was enabled.
    pub tail_cache: bool,
    /// The measured runs.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// Serializes the report (the `BENCH_results.json` document).
    pub fn to_value(&self) -> Value {
        vmap! {
            "schema" => BENCH_SCHEMA,
            "seed" => self.seed as i64,
            "total_ops" => self.total_ops as i64,
            "mix" => self.mix.as_str(),
            "clock_rate" => self.clock_rate,
            "tail_cache" => self.tail_cache,
            "runs" => Value::List(self.runs.iter().map(BenchRun::to_value).collect()),
        }
    }

    /// Pretty JSON text of the report.
    pub fn to_json(&self) -> String {
        beldi::value::json::to_json_pretty(&self.to_value())
    }

    /// Decodes a report document.
    ///
    /// # Errors
    ///
    /// A message naming the problem when the document is not a schema-1
    /// report.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        match v.get_int("schema") {
            Some(BENCH_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported bench schema {other}")),
            None => return Err("not a bench report (no `schema` field)".into()),
        }
        let runs = v
            .get_list("runs")
            .ok_or("bench report has no `runs` list")?
            .iter()
            .map(BenchRun::from_value)
            .collect();
        Ok(BenchReport {
            seed: v.get_int("seed").unwrap_or(0) as u64,
            total_ops: v.get_int("total_ops").unwrap_or(0) as u64,
            mix: v.get_str("mix").unwrap_or("default").to_owned(),
            clock_rate: v
                .get_attr("clock_rate")
                .and_then(Value::as_float)
                .unwrap_or(0.0),
            tail_cache: v.get_bool("tail_cache").unwrap_or(true),
            runs,
        })
    }

    /// Parses report JSON text.
    ///
    /// # Errors
    ///
    /// A message naming the problem (JSON syntax or report shape).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = beldi::value::json::from_json(text).map_err(|e| e.to_string())?;
        BenchReport::from_value(&v)
    }
}

/// The seeded RNG of worker `w` — part of the public determinism
/// contract: tests regenerate a worker's exact request stream with this.
pub fn worker_rng(seed: u64, worker: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Worker `w`'s deterministic share of `total` requests (first
/// `total % workers` workers take one extra).
pub fn ops_for_worker(total: u64, workers: usize, w: usize) -> u64 {
    let base = total / workers as u64;
    let extra = u64::from((w as u64) < total % workers as u64);
    base + extra
}

/// Platform shaped like the paper's AWS setup but with an effectively
/// unbounded invocation timeout: at high clock rates a realistic virtual
/// timeout is milliseconds of real time, and host scheduling jitter
/// would abort requests spuriously.
fn driver_platform(opts: &DriveOptions) -> PlatformConfig {
    PlatformConfig {
        concurrency_limit: opts.platform_concurrency.unwrap_or(1000),
        invoke_timeout: Duration::from_secs(24 * 3600),
        cold_start: Duration::from_millis(150),
        warm_start: Duration::from_millis(3),
        invoke_overhead: Duration::from_millis(10),
        warm_pool_per_fn: 2_000,
        saturation: SaturationPolicy::Queue,
    }
}

/// Takes one storage-growth observation (`elapsed_us` = virtual time
/// since the measurement window opened).
fn storage_sample(env: &BeldiEnv, elapsed_us: u64) -> StorageSample {
    let totals = env.gc_totals();
    let ic = env.ic_totals();
    let mut sample = StorageSample {
        t_us: elapsed_us,
        gc_passes: totals.passes,
        gc_recycled: totals.report.recycled_intents as u64,
        gc_deleted_log_entries: totals.report.deleted_log_entries as u64,
        gc_deleted_rows: totals.report.deleted_rows as u64,
        gc_corrupt_chains: totals.report.corrupt_chains as u64,
        ic_passes: ic.passes,
        ic_restarted: ic.report.restarted as u64,
        ic_corrupt: env.ic_corrupt_total(),
        ..StorageSample::default()
    };
    for (name, rows) in env.db().table_row_counts() {
        if schema::is_meta_table(&name) {
            sample.meta_rows += rows as u64;
        } else {
            sample.data_rows += rows as u64;
        }
        sample.tables.insert(name, rows as u64);
    }
    sample
}

/// Longest DAAL chain across every registered data-table key (Beldi
/// mode; other modes have single-row items and report zero).
fn max_chain_len(env: &BeldiEnv, mode: Mode) -> u64 {
    if mode != Mode::Beldi {
        return 0;
    }
    let mut max = 0u64;
    for ssf in env.ssf_names() {
        for logical in env.ssf_tables(&ssf) {
            let physical = schema::data_table(&ssf, &logical);
            let Ok(keys) = env.db().distinct_hash_keys(&physical) else {
                continue;
            };
            for key in keys {
                let Some(key) = key.as_str() else { continue };
                if let Ok(len) = env.daal_chain_len(&ssf, &logical, key) {
                    max = max.max(len as u64);
                }
            }
        }
    }
    max
}

/// Resolves the chaos/GC implications of `opts` for `mode`.
///
/// Baseline mode has no collectors to run (start_gc is a no-op there)
/// and no recovery machinery for a storm to exercise; treat the whole
/// run as GC- and chaos-free so its report never claims collectors it
/// cannot have.
fn resolve_run_shape(mode: Mode, opts: &DriveOptions) -> (Option<&ChaosOptions>, bool) {
    let chaos = if mode == Mode::Baseline {
        None
    } else {
        opts.chaos.as_ref()
    };
    let gc = (opts.gc || chaos.is_some()) && mode != Mode::Baseline;
    (chaos, gc)
}

/// Builds the environment for one drive — config resolution, app setup,
/// and the metrics-window reset. Shared verbatim by the thread and async
/// paths so their runs are equivalent by construction; collector
/// *launch* is the caller's job (timer threads vs executor tasks).
fn build_bench_env(
    app: &dyn WorkflowApp,
    mode: Mode,
    opts: &DriveOptions,
    chaos: Option<&ChaosOptions>,
    gc: bool,
) -> BeldiEnv {
    let mut cfg = BeldiConfig::for_mode(mode)
        .with_partitions(opts.partitions)
        .with_tail_cache(opts.tail_cache)
        .with_write_combine(opts.write_combine)
        .with_snapshot_reads(opts.snapshot_reads);
    if let Some(capacity) = opts.tail_cache_capacity {
        cfg = cfg.with_tail_cache_capacity(capacity);
    }
    if gc {
        cfg = cfg
            .with_t_max(opts.gc_t_max)
            .with_collector_period(opts.gc_period);
    }
    if let Some(c) = chaos {
        // The storm makes concurrent duplicate executions routine, so the
        // platform-timeout bound the GC's recycling rule assumes must
        // actually be enforced (`enforce_t_max`), with a `t_max` sized
        // for chaos-inflated execution times rather than the GC-test
        // default.
        cfg = cfg
            .with_ic_restart_delay(c.ic_restart_delay)
            .with_t_max(c.t_max)
            .with_enforce_t_max(true);
    }
    let mut builder = BeldiEnv::builder(cfg)
        .seed(opts.seed)
        .clock_rate(opts.clock_rate)
        .platform(driver_platform(opts));
    if opts.model_latency {
        builder = builder.latency(LatencyModel::dynamo());
    }
    let env = builder.build();
    app.setup(&env);
    // Open the measurement window: everything from here is the run.
    env.db().reset_metrics();
    env
}

/// Dispatches to [`drive`] or [`drive_async`] by `runtime`.
pub fn drive_on(
    runtime: RuntimeKind,
    app: &dyn WorkflowApp,
    mode: Mode,
    opts: &DriveOptions,
) -> BenchRun {
    match runtime {
        RuntimeKind::Thread => drive(app, mode, opts),
        RuntimeKind::Async => drive_async(app, mode, opts),
    }
}

/// Runs one closed-loop drive of `app` in `mode`. See the module docs.
pub fn drive(app: &dyn WorkflowApp, mode: Mode, opts: &DriveOptions) -> BenchRun {
    assert!(opts.workers > 0, "need at least one worker");
    let (chaos, gc) = resolve_run_shape(mode, opts);
    let env = build_bench_env(app, mode, opts, chaos, gc);
    if gc {
        // Online collectors on virtual-time timers, racing the client
        // workers below: GC alone for plain online-GC runs, IC + GC for
        // chaos runs — except the canary configuration (`relaunch:
        // false`), which keeps the IC off so killed workflows stay dead
        // and the conservation gates have something to catch.
        match chaos {
            Some(c) if c.relaunch => env.start_collectors(),
            _ => env.start_gc(),
        }
    }
    if let Some(c) = chaos {
        // The storm races everything above. Crash panics are simulated
        // failures, not bugs — keep them out of the test output.
        beldi_simfaas::silence_crash_backtraces();
        env.platform().faults().set_storm_policy(Some(StormPolicy {
            ssf_prob: c.ssf_kill_prob,
            collector_prob: c.collector_kill_prob,
            max_crashes: c.max_crashes,
            seed: opts.seed,
        }));
    }

    let clock = env.clock().clone();
    // beldi-lint: allow(determinism/wall-clock, wall-clock runtime is operator
    // reporting only and never enters the simulated timeline or logged state)
    let wall_start = std::time::Instant::now();
    let start = clock.now();
    let errors = AtomicU64::new(0);
    let hist = Mutex::new(Histogram::new());
    let samples = Mutex::new(Vec::new());
    let live_workers = AtomicU64::new(opts.workers as u64);
    let entry = app.entry_point();
    /// Decrements the live-worker count when dropped — on clean exit *or*
    /// unwind, so a panicking worker can never leave the sampler loop
    /// waiting forever (the scope would join it before re-raising the
    /// panic, turning a test failure into a hang).
    struct WorkerExit<'a>(&'a AtomicU64);
    impl Drop for WorkerExit<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    std::thread::scope(|s| {
        for w in 0..opts.workers {
            let env = &env;
            let clock = &clock;
            let errors = &errors;
            let hist = &hist;
            let live_workers = &live_workers;
            // Chaos runs pin every workflow root to a deterministic
            // instance id: combined with log-key-derived callee ids this
            // makes the whole execution tree's ids — and therefore the
            // storm's kill schedule — a pure function of the seed. The
            // retry budget re-drives a killed root with the *same* id
            // (exactly-once), or is 1 in the canary configuration.
            let root_attempts = chaos.map(|c| if c.relaunch { 50 } else { 1 });
            s.spawn(move || {
                let _exit = WorkerExit(live_workers);
                let mut rng = worker_rng(opts.seed, w);
                let mut local = Histogram::new();
                for i in 0..ops_for_worker(opts.total_ops, opts.workers, w) {
                    let request = app.gen_load_request(&mut rng);
                    let t0 = clock.now();
                    let result = match root_attempts {
                        Some(n) => {
                            env.invoke_attempts(entry, &format!("storm-w{w}-op{i}"), request, n)
                        }
                        None => env.invoke(entry, request),
                    };
                    if result.is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    local.record(clock.now().since(t0));
                }
                hist.lock().merge(&local);
            });
        }
        if gc {
            // Storage sampler: one observation every two GC periods while
            // any worker is still issuing requests (the final post-run
            // sample is taken outside the scope).
            let env = &env;
            let clock = &clock;
            let samples = &samples;
            let live_workers = &live_workers;
            s.spawn(move || {
                let period = opts.gc_period * 2;
                while live_workers.load(Ordering::Relaxed) > 0 {
                    clock.sleep(period);
                    let elapsed = clock.now().since(start).as_micros() as u64;
                    samples.lock().push(storage_sample(env, elapsed));
                }
            });
        }
    });
    let elapsed = clock.now().since(start);
    env.stop_collectors();
    if let Some(c) = chaos {
        // Storm over. Drain: re-drive every interrupted intent to
        // completion on virtual time so the end state is quiescent and
        // comparable to the oracle's — except in the canary
        // configuration, where killed workflows deliberately stay dead.
        env.platform().faults().set_storm_policy(None);
        if c.relaunch {
            env.drain_recovery(50)
                .expect("recovery drain must not fail");
        }
    }
    let db = env.db_metrics();
    let hist = hist.into_inner();
    let fingerprint = app.bench_fingerprint(&env);
    let mut storage = StorageSeries {
        samples: samples.into_inner(),
        max_chain_len: 0,
    };
    // The steady-state endpoint: one final sample after the last request
    // (and collector stop / recovery drain), then the end-of-run DAAL
    // depth statistic.
    storage
        .samples
        .push(storage_sample(&env, elapsed.as_micros() as u64));
    storage.max_chain_len = max_chain_len(&env, mode);
    let state_digest = format!("{:016x}", value_digest(&fingerprint));
    let effects = app.effect_count(&env);

    // Conservation check: re-drive the same request stream crash-free
    // and compare final-state digests and effect counts. The apps'
    // fingerprints are interleaving-invariant, so under exactly-once
    // semantics the digests must be bit-identical no matter what the
    // storm killed.
    let recovery = chaos.map(|_| {
        let faults = env.platform().faults();
        let mut recovery_samples = env.recovery_samples_ms();
        recovery_samples.sort_unstable();
        let pct = |q: f64| -> u64 {
            match recovery_samples.len() {
                0 => 0,
                n => recovery_samples[(((n - 1) as f64) * q).round() as usize],
            }
        };
        let ic = env.ic_totals();
        let oracle_opts = DriveOptions {
            chaos: None,
            ..opts.clone()
        };
        let oracle = drive(app, mode, &oracle_opts);
        RecoverySection {
            injected_crashes: faults.injected_count(),
            restarts: faults.restart_count(),
            crash_sites: faults.crash_sites(),
            ic_passes: ic.passes,
            ic_restarted: ic.report.restarted as u64,
            ic_crashes: ic.crashes,
            gc_crashes: env.gc_totals().crashes,
            ic_corrupt: env.ic_corrupt_total(),
            recovered_intents: recovery_samples.len() as u64,
            recovery_p50_ms: pct(0.50),
            recovery_p90_ms: pct(0.90),
            recovery_p99_ms: pct(0.99),
            duplicate_effects: (effects - oracle.effects).max(0),
            oracle_digest: oracle.state_digest.clone(),
            digest_match: state_digest == oracle.state_digest,
        }
    });

    BenchRun {
        app: app.kind().to_owned(),
        mode: mode_name(mode).to_owned(),
        workers: opts.workers,
        partitions: opts.partitions,
        ops: opts.total_ops,
        errors: errors.into_inner(),
        elapsed_virtual_us: elapsed.as_micros() as u64,
        wall_ms: wall_start.elapsed().as_millis() as u64,
        throughput_rps: opts.total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: LatencySummary::from_histogram(&hist),
        db,
        state_digest,
        effects,
        gc,
        storage,
        runtime: RuntimeKind::Thread,
        in_flight: None,
        recovery,
    }
}

/// Runs one drive of `app` in `mode` on a cooperative executor
/// ([`RuntimeKind::Async`]).
///
/// Same request multiset as [`drive`] — every worker's stream is drawn
/// from the same [`worker_rng`] in the same order — but *all* requests
/// are spawned up front as executor tasks awaiting
/// [`BeldiEnv::invoke_task`], so the whole load is in flight at once:
/// requests past the platform's concurrency cap park on wakers instead
/// of holding OS threads, which is what lets one process carry ≥10k
/// concurrent workflows. GC/IC collectors run as executor tasks
/// ([`BeldiEnv::spawn_collectors_on`]) rather than timer threads; the
/// chaos storm works unchanged (kill decisions hash instance ids, which
/// use the same `storm-w{w}-op{i}` scheme as the thread path's chaos
/// mode).
///
/// Latency semantics differ from the closed loop: each sample includes
/// queueing behind the concurrency cap, not just service time. Async
/// runs therefore carry a distinct [`BenchRun::key`] suffix and are
/// never gated against thread baselines — the cross-engine contract is
/// digest equality, not latency equality.
pub fn drive_async(app: &dyn WorkflowApp, mode: Mode, opts: &DriveOptions) -> BenchRun {
    assert!(opts.workers > 0, "need at least one worker");
    let (chaos, gc) = resolve_run_shape(mode, opts);
    let env = build_bench_env(app, mode, opts, chaos, gc);
    let rt = beldi_runtime::Executor::new(env.clock().clone(), opts.seed);
    let handle = rt.handle();
    if gc {
        // Same collector selection as the thread path: GC alone for
        // plain online-GC runs, IC + GC for chaos runs, IC off in the
        // canary configuration so killed workflows stay dead.
        let ic = matches!(chaos, Some(c) if c.relaunch);
        env.spawn_collectors_on(&handle, ic, true);
    }
    if let Some(c) = chaos {
        beldi_simfaas::silence_crash_backtraces();
        env.platform().faults().set_storm_policy(Some(StormPolicy {
            ssf_prob: c.ssf_kill_prob,
            collector_prob: c.collector_kill_prob,
            max_crashes: c.max_crashes,
            seed: opts.seed,
        }));
    }

    let clock = env.clock().clone();
    // beldi-lint: allow(determinism/wall-clock, wall-clock runtime is operator
    // reporting only and never enters the simulated timeline or logged state)
    let wall_start = std::time::Instant::now();
    let start = clock.now();
    let errors = Arc::new(AtomicU64::new(0));
    let hist = Arc::new(Mutex::new(Histogram::new()));
    let entry = app.entry_point();
    // Root retries mirror the thread path: chaos re-drives killed roots
    // under the same instance id (or never, in the canary config); a
    // crash-free run takes one attempt, exactly like `BeldiEnv::invoke`.
    let root_attempts = chaos.map_or(1, |c| if c.relaunch { 50 } else { 1 });
    // Admission gate: roots must never saturate the platform's worker
    // pool, because every admitted root issues *nested* SSF calls that
    // need permits of their own — hand all the permits to parked roots
    // and the pool livelocks with every root stuck behind its own
    // callees. A quarter of the pool for roots leaves the rest for
    // nested fan-out; the other ~N-admitted workflow tasks stay parked
    // on semaphore wakers, which is exactly the cheap in-flight
    // representation under test.
    let admission = Arc::new(beldi_runtime::Semaphore::new(
        (opts.platform_concurrency.unwrap_or(1000) / 4).max(1),
    ));
    let mut tasks = Vec::with_capacity(opts.total_ops as usize);
    for w in 0..opts.workers {
        let mut rng = worker_rng(opts.seed, w);
        for i in 0..ops_for_worker(opts.total_ops, opts.workers, w) {
            let request = app.gen_load_request(&mut rng);
            let instance = format!("storm-w{w}-op{i}");
            let fut = env.invoke_task(entry, &instance, request, root_attempts);
            let errors = Arc::clone(&errors);
            let hist = Arc::clone(&hist);
            let clock = clock.clone();
            let admission = Arc::clone(&admission);
            tasks.push(rt.spawn(async move {
                let t0 = clock.now();
                let _permit = admission.acquire().await;
                if fut.await.is_err() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                hist.lock().record(clock.now().since(t0));
            }));
        }
    }
    // Deterministic high-water reading: every request task (plus the
    // collector tasks) is live right here, before the executor runs.
    let spawned_live = handle.live_tasks() as u64;

    // Observational sampler on a plain thread (in-flight decay curve,
    // plus storage growth when collectors run) — excluded from the
    // determinism contract like the thread path's sampler.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let in_flight_samples = Arc::new(Mutex::new(Vec::new()));
    let storage_samples = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let stop = Arc::clone(&sampler_stop);
        let in_flight_samples = Arc::clone(&in_flight_samples);
        let storage_samples = Arc::clone(&storage_samples);
        let clock = clock.clone();
        let handle = handle.clone();
        let env = env.clone();
        let period = opts.gc_period.max(Duration::from_millis(1)) * 2;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                clock.sleep(period);
                let elapsed = clock.now().since(start).as_micros() as u64;
                in_flight_samples.lock().push(InFlightSample {
                    t_us: elapsed,
                    live: handle.live_tasks() as u64,
                });
                if gc {
                    storage_samples.lock().push(storage_sample(&env, elapsed));
                }
            }
        })
    };

    // Drive everything to completion on this thread: the await-all task
    // keeps the executor running until the last request resolves.
    rt.block_on(async move {
        for t in tasks {
            t.await;
        }
    });
    let elapsed = clock.now().since(start);
    sampler_stop.store(true, Ordering::Relaxed);
    env.stop_collectors();
    // Collector tasks observe the stop flags at their next tick; drain
    // them so the executor is empty before the recovery phase.
    rt.run();
    sampler.join().expect("sampler thread must not panic");
    if let Some(c) = chaos {
        env.platform().faults().set_storm_policy(None);
        if c.relaunch {
            env.drain_recovery(50)
                .expect("recovery drain must not fail");
        }
    }

    let db = env.db_metrics();
    let hist = Arc::try_unwrap(hist)
        .expect("all histogram holders done")
        .into_inner();
    let fingerprint = app.bench_fingerprint(&env);
    let mut storage = StorageSeries {
        samples: std::mem::take(&mut *storage_samples.lock()),
        max_chain_len: 0,
    };
    storage
        .samples
        .push(storage_sample(&env, elapsed.as_micros() as u64));
    storage.max_chain_len = max_chain_len(&env, mode);
    let mut in_flight = InFlightSeries {
        samples: std::mem::take(&mut *in_flight_samples.lock()),
        high_water: spawned_live,
    };
    in_flight.high_water = in_flight
        .samples
        .iter()
        .map(|s| s.live)
        .fold(in_flight.high_water, u64::max);
    let state_digest = format!("{:016x}", value_digest(&fingerprint));
    let effects = app.effect_count(&env);

    // Conservation check against a crash-free *thread* drive of the same
    // request stream: digest equality here is simultaneously the
    // exactly-once claim and the sync-vs-async equivalence claim.
    let recovery = chaos.map(|_| {
        let faults = env.platform().faults();
        let mut recovery_samples = env.recovery_samples_ms();
        recovery_samples.sort_unstable();
        let pct = |q: f64| -> u64 {
            match recovery_samples.len() {
                0 => 0,
                n => recovery_samples[(((n - 1) as f64) * q).round() as usize],
            }
        };
        let ic = env.ic_totals();
        let oracle_opts = DriveOptions {
            chaos: None,
            ..opts.clone()
        };
        let oracle = drive(app, mode, &oracle_opts);
        RecoverySection {
            injected_crashes: faults.injected_count(),
            restarts: faults.restart_count(),
            crash_sites: faults.crash_sites(),
            ic_passes: ic.passes,
            ic_restarted: ic.report.restarted as u64,
            ic_crashes: ic.crashes,
            gc_crashes: env.gc_totals().crashes,
            ic_corrupt: env.ic_corrupt_total(),
            recovered_intents: recovery_samples.len() as u64,
            recovery_p50_ms: pct(0.50),
            recovery_p90_ms: pct(0.90),
            recovery_p99_ms: pct(0.99),
            duplicate_effects: (effects - oracle.effects).max(0),
            oracle_digest: oracle.state_digest.clone(),
            digest_match: state_digest == oracle.state_digest,
        }
    });

    BenchRun {
        app: app.kind().to_owned(),
        mode: mode_name(mode).to_owned(),
        workers: opts.workers,
        partitions: opts.partitions,
        ops: opts.total_ops,
        errors: errors.load(Ordering::Relaxed),
        elapsed_virtual_us: elapsed.as_micros() as u64,
        wall_ms: wall_start.elapsed().as_millis() as u64,
        throughput_rps: opts.total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: LatencySummary::from_histogram(&hist),
        db,
        state_digest,
        effects,
        gc,
        storage,
        runtime: RuntimeKind::Async,
        in_flight: Some(in_flight),
        recovery,
    }
}

/// FNV-1a digest of a [`Value`], stable across platforms and runs
/// (unlike `DefaultHasher`, whose keys are process-random).
pub fn value_digest(v: &Value) -> u64 {
    beldi::value::Fnv1a::digest(v)
}

/// Serializes a [`MetricsSnapshot`] for the report.
fn metrics_to_value(m: &MetricsSnapshot) -> Value {
    vmap! {
        "gets" => m.gets as i64,
        "writes" => m.writes as i64,
        "queries" => m.queries as i64,
        "scans" => m.scans as i64,
        "transact_writes" => m.transact_writes as i64,
        "deletes" => m.deletes as i64,
        "cond_failures" => m.cond_failures as i64,
        "bytes_read" => m.bytes_read as i64,
        "bytes_written" => m.bytes_written as i64,
        "rows_scanned" => m.rows_scanned as i64,
        "lock_waits" => m.lock_waits as i64,
        "partition_ops" => Value::List(
            m.partition_ops.iter().map(|&n| Value::Int(n as i64)).collect()
        ),
    }
}

/// Decodes a [`MetricsSnapshot`] from the report.
fn metrics_from_value(v: &Value) -> MetricsSnapshot {
    let get = |k: &str| v.get_int(k).unwrap_or(0) as u64;
    MetricsSnapshot {
        gets: get("gets"),
        writes: get("writes"),
        queries: get("queries"),
        scans: get("scans"),
        transact_writes: get("transact_writes"),
        deletes: get("deletes"),
        cond_failures: get("cond_failures"),
        bytes_read: get("bytes_read"),
        bytes_written: get("bytes_written"),
        rows_scanned: get("rows_scanned"),
        lock_waits: get("lock_waits"),
        partition_ops: v
            .get_list("partition_ops")
            .map(|l| {
                l.iter()
                    .filter_map(Value::as_int)
                    .map(|i| i as u64)
                    .collect()
            })
            .unwrap_or_default(),
    }
}

/// A tiny helper used by report consumers: `Map` of run key → run, for
/// joining baseline and current reports.
pub fn runs_by_key(report: &BenchReport) -> std::collections::BTreeMap<String, &BenchRun> {
    report.runs.iter().map(|r| (r.key(), r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_split_covers_total_exactly() {
        for (total, workers) in [(10u64, 3usize), (7, 8), (0, 2), (100, 1), (5, 5)] {
            let sum: u64 = (0..workers)
                .map(|w| ops_for_worker(total, workers, w))
                .sum();
            assert_eq!(sum, total, "total={total} workers={workers}");
            // Shares differ by at most one.
            let shares: Vec<u64> = (0..workers)
                .map(|w| ops_for_worker(total, workers, w))
                .collect();
            let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn worker_rngs_are_deterministic_and_distinct() {
        use rand::Rng;
        let draw = |seed, w| -> Vec<u32> {
            let mut rng = worker_rng(seed, w);
            (0..8).map(|_| rng.gen()).collect()
        };
        assert_eq!(draw(1, 0), draw(1, 0));
        assert_ne!(draw(1, 0), draw(1, 1));
        assert_ne!(draw(1, 0), draw(2, 0));
    }

    #[test]
    fn value_digest_is_stable_and_discriminating() {
        let a = vmap! { "x" => 1i64, "y" => "s" };
        let b = vmap! { "x" => 2i64, "y" => "s" };
        assert_eq!(value_digest(&a), value_digest(&a));
        assert_ne!(value_digest(&a), value_digest(&b));
    }

    #[test]
    fn report_json_round_trips() {
        let run = BenchRun {
            app: "media".into(),
            mode: "beldi".into(),
            workers: 4,
            partitions: 8,
            ops: 100,
            errors: 0,
            elapsed_virtual_us: 1_234_567,
            wall_ms: 89,
            throughput_rps: 81.0,
            latency: LatencySummary {
                p50_us: 10,
                p90_us: 20,
                p95_us: 25,
                p99_us: 30,
                mean_us: 12,
                max_us: 40,
            },
            db: MetricsSnapshot {
                gets: 5,
                writes: 4,
                partition_ops: vec![1, 2, 3],
                ..MetricsSnapshot::default()
            },
            state_digest: "00000000deadbeef".into(),
            effects: 7,
            gc: true,
            storage: StorageSeries {
                samples: vec![StorageSample {
                    t_us: 500_000,
                    meta_rows: 40,
                    data_rows: 40,
                    gc_passes: 3,
                    gc_recycled: 12,
                    gc_deleted_log_entries: 30,
                    gc_deleted_rows: 9,
                    gc_corrupt_chains: 0,
                    ic_passes: 5,
                    ic_restarted: 2,
                    ic_corrupt: 0,
                    tables: [("f.intent".to_owned(), 4u64)].into_iter().collect(),
                }],
                max_chain_len: 3,
            },
            runtime: RuntimeKind::Async,
            in_flight: Some(InFlightSeries {
                samples: vec![
                    InFlightSample {
                        t_us: 250_000,
                        live: 10_400,
                    },
                    InFlightSample {
                        t_us: 750_000,
                        live: 3_200,
                    },
                ],
                high_water: 10_412,
            }),
            recovery: Some(RecoverySection {
                injected_crashes: 17,
                restarts: 21,
                crash_sites: [
                    ("wrapper.enter".to_owned(), 9u64),
                    ("ic.exit".to_owned(), 2u64),
                ]
                .into_iter()
                .collect(),
                ic_passes: 5,
                ic_restarted: 2,
                ic_crashes: 2,
                gc_crashes: 1,
                ic_corrupt: 0,
                recovered_intents: 14,
                recovery_p50_ms: 120,
                recovery_p90_ms: 450,
                recovery_p99_ms: 900,
                duplicate_effects: 0,
                oracle_digest: "00000000deadbeef".into(),
                digest_match: true,
            }),
        };
        let report = BenchReport {
            seed: 42,
            total_ops: 100,
            mix: "default".into(),
            clock_rate: 40.0,
            tail_cache: true,
            runs: vec![run],
        };
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.runs[0].key(), "media/beldi/w4@async");
    }

    #[test]
    fn thread_runs_serialize_without_async_keys() {
        // The byte-identity contract for the default engine: a thread
        // run's JSON must not even mention the async-only fields.
        let run = BenchRun {
            app: "media".into(),
            mode: "beldi".into(),
            workers: 2,
            partitions: 4,
            ops: 10,
            errors: 0,
            elapsed_virtual_us: 1,
            wall_ms: 1,
            throughput_rps: 1.0,
            latency: LatencySummary::default(),
            db: MetricsSnapshot::default(),
            state_digest: "0".into(),
            effects: 0,
            gc: false,
            storage: StorageSeries::default(),
            runtime: RuntimeKind::Thread,
            in_flight: None,
            recovery: None,
        };
        let json = beldi::value::json::to_json_pretty(&run.to_value());
        assert!(!json.contains("runtime"));
        assert!(!json.contains("in_flight"));
        assert_eq!(run.key(), "media/beldi/w2");
        // And it decodes back to the thread engine by default.
        let parsed = BenchRun::from_value(&beldi::value::json::from_json(&json).unwrap());
        assert_eq!(parsed.runtime, RuntimeKind::Thread);
        assert_eq!(parsed.in_flight, None);
    }

    #[test]
    fn malformed_reports_are_rejected_with_reasons() {
        assert!(BenchReport::from_json("{}").unwrap_err().contains("schema"));
        assert!(BenchReport::from_json("[1,2]")
            .unwrap_err()
            .contains("schema"));
        assert!(BenchReport::from_json("{\"schema\":1}")
            .unwrap_err()
            .contains("runs"));
        assert!(BenchReport::from_json("not json").is_err());
    }
}

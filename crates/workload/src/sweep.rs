//! Throughput sweeps: latency-vs-throughput series (Figs. 14, 15, 26).

use std::time::Duration;

use beldi_simclock::SharedClock;

use crate::runner::{RateRunner, Request, RunReport};

/// One point of a latency-vs-throughput series.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered arrival rate (req per virtual second).
    pub offered_rate: f64,
    /// Achieved completion rate.
    pub achieved_rate: f64,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Failed requests.
    pub errors: u64,
}

impl From<&RunReport> for SweepPoint {
    fn from(r: &RunReport) -> Self {
        SweepPoint {
            offered_rate: r.offered_rate,
            achieved_rate: r.achieved_rate,
            p50: r.latency.p50,
            p99: r.latency.p99,
            errors: r.errors,
        }
    }
}

/// Runs `request` at each rate in `rates` for `duration` (virtual) each,
/// with `issuers` concurrent issuer threads, returning one point per rate
/// — the paper's "issue load at a constant rate … increasing in
/// increments … until the system is saturated" methodology (§7.4).
pub fn sweep(
    clock: SharedClock,
    rates: &[f64],
    duration: Duration,
    issuers: usize,
    request: Request,
) -> Vec<SweepPoint> {
    rates
        .iter()
        .map(|&rate| {
            let runner = RateRunner::new(clock.clone(), rate, duration, issuers);
            let report = runner.run(request.clone());
            SweepPoint::from(&report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beldi_simclock::ScaledClock;
    use std::sync::Arc;

    #[test]
    fn sweep_produces_one_point_per_rate() {
        let clock = ScaledClock::shared(2000.0);
        let c = clock.clone();
        let points = sweep(
            clock,
            &[50.0, 100.0, 200.0],
            Duration::from_millis(500),
            4,
            Arc::new(move |_| {
                c.sleep(Duration::from_millis(1));
                true
            }),
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].offered_rate, 50.0);
        assert_eq!(points[2].offered_rate, 200.0);
        for p in &points {
            assert_eq!(p.errors, 0);
            assert!(p.p99 >= p.p50);
        }
    }

    #[test]
    fn saturation_shows_up_as_latency_growth() {
        // Service time 10ms from 2 issuers caps capacity at ~200/s; the
        // sweep's overloaded point must show far higher latency.
        let clock = ScaledClock::shared(2000.0);
        let c = clock.clone();
        let points = sweep(
            clock,
            &[50.0, 800.0],
            Duration::from_millis(500),
            2,
            Arc::new(move |_| {
                c.sleep(Duration::from_millis(10));
                true
            }),
        );
        assert!(
            points[1].p50 > points[0].p50 * 3,
            "saturated p50 {:?} vs unloaded {:?}",
            points[1].p50,
            points[0].p50
        );
    }
}

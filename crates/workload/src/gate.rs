//! The performance-regression gate over driver reports.
//!
//! CI runs `drive --smoke`, uploads `BENCH_results.json`, and feeds it —
//! together with the checked-in `BENCH_baseline.json` — through this
//! comparator (`tools/bench_gate.rs` is the thin CLI). The gate fails
//! when any `app × mode × workers` point regresses in throughput by more
//! than the allowed fraction, when a baseline point is missing from the
//! results, or when a result run is itself unsound (zero ops, request
//! errors).
//!
//! Throughput is *virtual-time* throughput: it is dominated by the
//! modelled storage/invocation latencies and the number of operations
//! each design issues, not by the CI machine's speed (DESIGN.md §9), so
//! a generous margin (default 25%) absorbs host-noise leakage while
//! still catching real regressions — an accidental extra round trip per
//! read costs well over 25%.

use crate::driver::{runs_by_key, BenchReport, BenchRun};

/// One baseline-vs-current comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// The run identity (`app/mode/wN`).
    pub key: String,
    /// Baseline throughput (requests per virtual second).
    pub baseline_rps: f64,
    /// Current throughput.
    pub current_rps: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether this row passes the gate.
    pub ok: bool,
}

/// The gate's verdict across all runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Per-run comparisons (baseline order).
    pub rows: Vec<GateRow>,
    /// Human-readable failures; empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateReport {
    /// True when every check passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` against `baseline`, allowing throughput to drop by
/// at most `max_regress` (a fraction, e.g. `0.25`).
///
/// Extra runs in `current` (new apps/worker counts) are reported but
/// never fail the gate; missing runs do. Zero-throughput or erroring
/// current runs fail regardless of ratio — they indicate a broken
/// driver, not a slow one.
pub fn gate(baseline: &BenchReport, current: &BenchReport, max_regress: f64) -> GateReport {
    let mut report = GateReport::default();
    let current_by_key = runs_by_key(current);
    let floor = 1.0 - max_regress;

    for base in &baseline.runs {
        let key = base.key();
        // A broken baseline must never gate vacuously: a run that
        // recorded no throughput or request errors was a broken drive,
        // and comparing against it would let any regression through.
        if base.throughput_rps <= 0.0 || base.errors > 0 {
            report.failures.push(format!(
                "{key}: baseline run is unsound ({} rps, {} error(s)) — regenerate BENCH_baseline.json",
                base.throughput_rps, base.errors
            ));
            continue;
        }
        let Some(cur) = current_by_key.get(&key) else {
            report.failures.push(format!(
                "{key}: present in baseline but missing from results"
            ));
            continue;
        };
        if cur.ops == 0 {
            report.failures.push(format!("{key}: zero ops in results"));
            continue;
        }
        if cur.errors > 0 {
            report
                .failures
                .push(format!("{key}: {} request error(s) in results", cur.errors));
        }
        let ratio = cur.throughput_rps / base.throughput_rps;
        let ok = ratio >= floor;
        if !ok {
            report.failures.push(format!(
                "{key}: throughput regressed {:.1}% (baseline {:.1} rps, current {:.1} rps, floor {:.0}%)",
                (1.0 - ratio) * 100.0,
                base.throughput_rps,
                cur.throughput_rps,
                floor * 100.0
            ));
        }
        report.rows.push(GateRow {
            key,
            baseline_rps: base.throughput_rps,
            current_rps: cur.throughput_rps,
            ratio,
            ok,
        });
    }
    report
}

/// One baseline-vs-current p99 latency comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyGateRow {
    /// The run identity (`app/mode/wN`).
    pub key: String,
    /// Baseline p99 service latency (virtual microseconds).
    pub baseline_p99_us: u64,
    /// Current p99.
    pub current_p99_us: u64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether this row passes the gate.
    pub ok: bool,
}

/// Absolute slack on the p99 ceiling: tail percentiles of smoke-scale
/// runs sit on a handful of samples, so a sub-millisecond wobble must
/// never trip the fractional bound.
const P99_SLACK_US: u64 = 500;

/// The tail-latency gate: every baseline run's p99 may grow by at most
/// `max_regress` (a fraction, e.g. `0.5`), plus a small absolute slack
/// ([`P99_SLACK_US`]) for smoke-scale tails.
///
/// Mirrors [`gate`]'s matching rules: extra current runs are ignored,
/// missing runs fail, and a baseline run with no latency data (zero p99
/// — a drive without the latency model) is unsound rather than a free
/// pass. Returns human-readable failures plus the comparison rows;
/// empty failures = pass.
pub fn latency_gate(
    baseline: &BenchReport,
    current: &BenchReport,
    max_regress: f64,
) -> (Vec<LatencyGateRow>, Vec<String>) {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let current_by_key = runs_by_key(current);

    for base in &baseline.runs {
        let key = base.key();
        if base.latency.p99_us == 0 {
            failures.push(format!(
                "{key}: baseline run has no latency data (p99 = 0) — \
                 regenerate BENCH_baseline.json with the latency model on"
            ));
            continue;
        }
        let Some(cur) = current_by_key.get(&key) else {
            failures.push(format!(
                "{key}: present in baseline but missing from results"
            ));
            continue;
        };
        let ceiling = (base.latency.p99_us as f64 * (1.0 + max_regress)) as u64 + P99_SLACK_US;
        let ratio = cur.latency.p99_us as f64 / base.latency.p99_us as f64;
        let ok = cur.latency.p99_us <= ceiling;
        if !ok {
            failures.push(format!(
                "{key}: p99 regressed {:.1}% (baseline {} µs, current {} µs, ceiling {} µs)",
                (ratio - 1.0) * 100.0,
                base.latency.p99_us,
                cur.latency.p99_us,
                ceiling
            ));
        }
        rows.push(LatencyGateRow {
            key,
            baseline_p99_us: base.latency.p99_us,
            current_p99_us: cur.latency.p99_us,
            ratio,
            ok,
        });
    }
    (rows, failures)
}

/// Slack added to the plateau bound so tiny absolute counts (a handful
/// of intents in flight at sample time) never trip the ratio check.
const GROWTH_SLACK_ROWS: u64 = 64;

/// Checks one GC-enabled run's storage series for *bounded* steady-state
/// growth, appending human-readable failures.
///
/// The property gated: once online GC reaches steady state, Beldi's
/// metadata tables (intents, logs, shadows, disconnected DAAL rows) stop
/// growing — the row count at the end of the run must not materially
/// exceed the count at the midpoint. Without GC both grow linearly with
/// requests, so a broken (or never-firing) collector fails loudly. Also
/// rejected: zero completed GC passes, too few samples to judge, and any
/// corrupt-chain report.
fn check_growth(run: &BenchRun, max_growth: f64, failures: &mut Vec<String>) {
    let key = run.key();
    let samples = &run.storage.samples;
    if samples.len() < 4 {
        failures.push(format!(
            "{key}: only {} storage sample(s) — run too short to judge steady state",
            samples.len()
        ));
        return;
    }
    let last = &samples[samples.len() - 1];
    if last.gc_passes == 0 {
        failures.push(format!("{key}: online GC never completed a pass"));
    }
    if last.gc_corrupt_chains > 0 {
        failures.push(format!(
            "{key}: GC reported {} corrupt DAAL chain(s)",
            last.gc_corrupt_chains
        ));
    }
    let mid = &samples[samples.len() / 2];
    for (label, mid_rows, end_rows) in [
        ("metadata", mid.meta_rows, last.meta_rows),
        ("data", mid.data_rows, last.data_rows),
    ] {
        let bound = (mid_rows as f64 * (1.0 + max_growth)) as u64 + GROWTH_SLACK_ROWS;
        if end_rows > bound {
            failures.push(format!(
                "{key}: {label} rows grew {mid_rows} → {end_rows} between the run midpoint \
                 and the end (bound {bound}) — storage is not reaching a steady state"
            ));
        }
    }
}

/// The storage-growth gate over a GC-enabled driver report: every
/// GC-enabled run must show bounded steady-state metadata/data growth
/// (see [`check_growth`]). `max_growth` is the allowed fractional
/// increase between the run midpoint and the end (e.g. `0.25`).
///
/// Runs recorded with `gc: false` are skipped — Baseline mode has no
/// collectors, so a `drive --gc --mode all` report legitimately mixes
/// both — but a report with *no* GC-enabled run at all fails rather
/// than passing vacuously (it means the gate was pointed at the wrong
/// file or the drive was misconfigured).
pub fn growth_gate(report: &BenchReport, max_growth: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let gc_runs: Vec<&BenchRun> = report.runs.iter().filter(|r| r.gc).collect();
    if gc_runs.is_empty() {
        failures.push("growth gate: report contains no GC-enabled runs".to_owned());
    }
    for run in gc_runs {
        check_growth(run, max_growth, &mut failures);
    }
    failures
}

/// The chaos-recovery gate over a chaos driver report.
///
/// Every chaos run (one carrying a [`crate::driver::RecoverySection`])
/// must have survived its crash storm with exactly-once semantics
/// intact:
///
/// - the conservation digest equals the crash-free oracle's;
/// - duplicate effects beyond the oracle are within
///   `max_duplicate_effects` (CI pins this to zero);
/// - the IC quarantined no corrupt intents;
/// - recovery p99 (virtual ms) is within the `max_recovery_p99_ms` SLO.
///
/// Vacuous passes are rejected: a report with no chaos run at all fails,
/// as does a chaos run whose storm never actually injected a crash or
/// whose recovery series is empty despite injected *workflow* crashes —
/// both mean the gate is checking nothing. Crashes that landed only on
/// collector passes (`ic.*`/`gc.*` sites) are exempt from the
/// recovery-series requirement: a killed collector pass has no intent to
/// recover, so such a storm is still a meaningful digest check.
pub fn recovery_gate(
    report: &BenchReport,
    max_recovery_p99_ms: u64,
    max_duplicate_effects: i64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let chaos_runs: Vec<&BenchRun> = report
        .runs
        .iter()
        .filter(|r| r.recovery.is_some())
        .collect();
    if chaos_runs.is_empty() {
        failures.push("recovery gate: report contains no chaos runs".to_owned());
    }
    for run in chaos_runs {
        let key = run.key();
        let rec = run.recovery.as_ref().expect("filtered on recovery");
        if rec.injected_crashes == 0 {
            failures.push(format!(
                "{key}: the storm injected no crashes — the chaos gate is vacuous \
                 (raise the kill rates or the op count)"
            ));
        } else {
            // Only workflow kills can produce recovery samples: a killed
            // IC/GC pass has no intent of its own to recover (its crash
            // shows up in `ic_crashes`/`gc_crashes` and is covered by the
            // digest check). A storm whose whole crash budget landed on
            // collectors legitimately has an empty recovery series.
            let workflow_crashes: u64 = rec
                .crash_sites
                .iter()
                .filter(|(label, _)| !label.starts_with("ic.") && !label.starts_with("gc."))
                .map(|(_, n)| *n)
                .sum();
            if workflow_crashes > 0 && rec.recovered_intents == 0 {
                failures.push(format!(
                    "{key}: {workflow_crashes} workflow crash(es) injected but no killed \
                     instance was observed recovering — the recovery series is empty",
                ));
            }
        }
        if !rec.digest_match {
            failures.push(format!(
                "{key}: conservation digest mismatch (chaos {}, oracle {}) — \
                 the storm lost or corrupted state",
                run.state_digest, rec.oracle_digest
            ));
        }
        if rec.duplicate_effects > max_duplicate_effects {
            failures.push(format!(
                "{key}: {} duplicate effect(s) beyond the crash-free oracle (max {}) — \
                 exactly-once is violated",
                rec.duplicate_effects, max_duplicate_effects
            ));
        }
        if rec.ic_corrupt > 0 {
            failures.push(format!(
                "{key}: IC quarantined {} corrupt intent(s)",
                rec.ic_corrupt
            ));
        }
        if rec.recovery_p99_ms > max_recovery_p99_ms {
            failures.push(format!(
                "{key}: recovery p99 {} ms exceeds the SLO ceiling {} ms",
                rec.recovery_p99_ms, max_recovery_p99_ms
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{BenchRun, LatencySummary, RecoverySection, StorageSample, StorageSeries};
    use beldi_simdb::MetricsSnapshot;

    fn run(app: &str, workers: usize, rps: f64, errors: u64) -> BenchRun {
        BenchRun {
            app: app.into(),
            mode: "beldi".into(),
            workers,
            partitions: 8,
            ops: 100,
            errors,
            elapsed_virtual_us: 1,
            wall_ms: 1,
            throughput_rps: rps,
            latency: LatencySummary::default(),
            db: MetricsSnapshot::default(),
            state_digest: String::new(),
            effects: 0,
            gc: false,
            storage: StorageSeries::default(),
            runtime: crate::driver::RuntimeKind::Thread,
            in_flight: None,
            recovery: None,
        }
    }

    /// A chaos run with a healthy recovery section on top of the
    /// sound-run defaults; tests break individual fields.
    fn chaos_run(app: &str) -> BenchRun {
        BenchRun {
            state_digest: "abcd".into(),
            recovery: Some(RecoverySection {
                injected_crashes: 20,
                restarts: 25,
                crash_sites: [("wrapper.enter".to_owned(), 20u64)].into_iter().collect(),
                ic_passes: 6,
                ic_restarted: 4,
                ic_crashes: 1,
                gc_crashes: 1,
                ic_corrupt: 0,
                recovered_intents: 15,
                recovery_p50_ms: 100,
                recovery_p90_ms: 300,
                recovery_p99_ms: 800,
                duplicate_effects: 0,
                oracle_digest: "abcd".into(),
                digest_match: true,
            }),
            ..run(app, 4, 10.0, 0)
        }
    }

    /// A GC-enabled run whose meta-row series is given explicitly.
    fn gc_run(meta_series: &[u64], gc_passes: u64) -> BenchRun {
        let samples = meta_series
            .iter()
            .enumerate()
            .map(|(i, &meta_rows)| StorageSample {
                t_us: (i as u64 + 1) * 1_000_000,
                meta_rows,
                data_rows: 100,
                gc_passes,
                ..StorageSample::default()
            })
            .collect();
        BenchRun {
            gc: true,
            storage: StorageSeries {
                samples,
                max_chain_len: 2,
            },
            ..run("media", 4, 10.0, 0)
        }
    }

    fn report(runs: Vec<BenchRun>) -> BenchReport {
        BenchReport {
            seed: 42,
            total_ops: 100,
            mix: "default".into(),
            clock_rate: 40.0,
            tail_cache: true,
            runs,
        }
    }

    #[test]
    fn equal_reports_pass() {
        let base = report(vec![run("media", 1, 100.0, 0), run("media", 4, 300.0, 0)]);
        let g = gate(&base, &base, 0.25);
        assert!(g.ok(), "{:?}", g.failures);
        assert_eq!(g.rows.len(), 2);
        assert!(g.rows.iter().all(|r| (r.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn small_regression_passes_big_regression_fails() {
        let base = report(vec![run("media", 1, 100.0, 0)]);
        let slightly_slow = report(vec![run("media", 1, 80.0, 0)]);
        assert!(gate(&base, &slightly_slow, 0.25).ok());
        let much_slower = report(vec![run("media", 1, 70.0, 0)]);
        let g = gate(&base, &much_slower, 0.25);
        assert!(!g.ok());
        assert!(g.failures[0].contains("regressed"), "{:?}", g.failures);
    }

    #[test]
    fn improvements_always_pass() {
        let base = report(vec![run("media", 1, 100.0, 0)]);
        let faster = report(vec![run("media", 1, 250.0, 0)]);
        assert!(gate(&base, &faster, 0.25).ok());
    }

    #[test]
    fn missing_and_erroring_runs_fail() {
        let base = report(vec![run("media", 1, 100.0, 0), run("travel", 1, 50.0, 0)]);
        let missing = report(vec![run("media", 1, 100.0, 0)]);
        let g = gate(&base, &missing, 0.25);
        assert!(!g.ok());
        assert!(g.failures[0].contains("missing"));

        let erroring = report(vec![run("media", 1, 100.0, 3), run("travel", 1, 50.0, 0)]);
        let g = gate(&base, &erroring, 0.25);
        assert!(!g.ok());
        assert!(g.failures[0].contains("error"));
    }

    #[test]
    fn unsound_baseline_runs_fail_instead_of_gating_vacuously() {
        let zero_rps = report(vec![run("media", 1, 0.0, 0)]);
        let current = report(vec![run("media", 1, 0.0, 0)]);
        let g = gate(&zero_rps, &current, 0.25);
        assert!(!g.ok());
        assert!(g.failures[0].contains("baseline run is unsound"));

        let erroring_base = report(vec![run("media", 1, 100.0, 2)]);
        let g = gate(
            &erroring_base,
            &report(vec![run("media", 1, 100.0, 0)]),
            0.25,
        );
        assert!(!g.ok());
        assert!(g.failures[0].contains("baseline run is unsound"));
    }

    #[test]
    fn extra_current_runs_are_ignored() {
        let base = report(vec![run("media", 1, 100.0, 0)]);
        let extra = report(vec![run("media", 1, 100.0, 0), run("social", 8, 10.0, 0)]);
        assert!(gate(&base, &extra, 0.25).ok());
    }

    /// A run with the given p99 (µs) on top of the sound-run defaults.
    fn run_p99(app: &str, workers: usize, p99_us: u64) -> BenchRun {
        BenchRun {
            latency: LatencySummary {
                p99_us,
                ..LatencySummary::default()
            },
            ..run(app, workers, 100.0, 0)
        }
    }

    #[test]
    fn latency_gate_passes_equal_and_improved_tails() {
        let base = report(vec![
            run_p99("media", 1, 40_000),
            run_p99("media", 4, 90_000),
        ]);
        let (rows, failures) = latency_gate(&base, &base, 0.5);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.ok));

        let faster = report(vec![
            run_p99("media", 1, 10_000),
            run_p99("media", 4, 20_000),
        ]);
        let (_, failures) = latency_gate(&base, &faster, 0.5);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn latency_gate_fails_a_large_p99_regression() {
        let base = report(vec![run_p99("media", 1, 40_000)]);
        // 50% growth + slack is in budget at 0.5; double is not.
        let slower = report(vec![run_p99("media", 1, 59_000)]);
        let (_, failures) = latency_gate(&base, &slower, 0.5);
        assert!(failures.is_empty(), "{failures:?}");
        let much_slower = report(vec![run_p99("media", 1, 80_000)]);
        let (rows, failures) = latency_gate(&base, &much_slower, 0.5);
        assert!(!failures.is_empty());
        assert!(failures[0].contains("p99 regressed"), "{failures:?}");
        assert!(!rows[0].ok);
    }

    #[test]
    fn latency_gate_slack_forgives_tiny_absolute_tails() {
        // 3× the baseline ratio-wise, but within the absolute slack —
        // sub-millisecond smoke tails must not gate.
        let base = report(vec![run_p99("media", 1, 200)]);
        let wobbled = report(vec![run_p99("media", 1, 600)]);
        let (_, failures) = latency_gate(&base, &wobbled, 0.5);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn latency_gate_rejects_unsound_baselines_and_missing_runs() {
        // p99 = 0 in the baseline: a latency-model-free drive, unsound.
        let no_latency = report(vec![run("media", 1, 100.0, 0)]);
        let (_, failures) = latency_gate(&no_latency, &no_latency, 0.5);
        assert!(
            failures.iter().any(|f| f.contains("no latency data")),
            "{failures:?}"
        );

        let base = report(vec![
            run_p99("media", 1, 40_000),
            run_p99("travel", 1, 40_000),
        ]);
        let missing = report(vec![run_p99("media", 1, 40_000)]);
        let (_, failures) = latency_gate(&base, &missing, 0.5);
        assert!(
            failures.iter().any(|f| f.contains("missing")),
            "{failures:?}"
        );

        // Extra current runs are ignored, as in the throughput gate.
        let extra = report(vec![
            run_p99("media", 1, 40_000),
            run_p99("social", 8, 1_000),
        ]);
        let (rows, failures) =
            latency_gate(&report(vec![run_p99("media", 1, 40_000)]), &extra, 0.5);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn growth_gate_accepts_a_plateau() {
        // Metadata grows during warm-up, then plateaus: bounded.
        let r = gc_run(&[400, 700, 820, 800, 790, 810], 30);
        let failures = growth_gate(&report(vec![r]), 0.25);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn growth_gate_rejects_linear_growth() {
        // Metadata keeps climbing past the midpoint: GC is not keeping up.
        let r = gc_run(&[500, 1000, 1500, 2000, 2500, 3000], 30);
        let failures = growth_gate(&report(vec![r]), 0.25);
        assert!(
            failures.iter().any(|f| f.contains("not reaching")),
            "{failures:?}"
        );
    }

    #[test]
    fn growth_gate_rejects_degenerate_runs() {
        // GC never fired.
        let r = gc_run(&[100, 100, 100, 100], 0);
        let failures = growth_gate(&report(vec![r]), 0.25);
        assert!(
            failures.iter().any(|f| f.contains("never completed")),
            "{failures:?}"
        );

        // No GC-enabled run in the whole report: never pass vacuously.
        let failures = growth_gate(&report(vec![run("media", 1, 10.0, 0)]), 0.25);
        assert!(
            failures.iter().any(|f| f.contains("no GC-enabled runs")),
            "{failures:?}"
        );
        // But a GC-free (e.g. baseline-mode) run riding along with a
        // sound GC run is simply skipped.
        let mixed = report(vec![
            gc_run(&[400, 700, 800, 790], 10),
            run("media", 1, 10.0, 0),
        ]);
        assert!(growth_gate(&mixed, 0.25).is_empty());

        // Too few samples to judge.
        let r = gc_run(&[100, 100], 5);
        let failures = growth_gate(&report(vec![r]), 0.25);
        assert!(
            failures.iter().any(|f| f.contains("too short")),
            "{failures:?}"
        );

        // Corruption is always fatal.
        let mut r = gc_run(&[100, 100, 100, 100], 5);
        r.storage.samples.last_mut().unwrap().gc_corrupt_chains = 1;
        let failures = growth_gate(&report(vec![r]), 0.25);
        assert!(
            failures.iter().any(|f| f.contains("corrupt")),
            "{failures:?}"
        );

        // An empty report never passes vacuously.
        let failures = growth_gate(&report(vec![]), 0.25);
        assert!(!failures.is_empty());
    }

    #[test]
    fn recovery_gate_passes_healthy_chaos_run() {
        let failures = recovery_gate(&report(vec![chaos_run("travel")]), 2_000, 0);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn recovery_gate_rejects_digest_mismatch() {
        let mut r = chaos_run("travel");
        r.recovery.as_mut().unwrap().digest_match = false;
        r.recovery.as_mut().unwrap().oracle_digest = "ffff".into();
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(
            failures.iter().any(|f| f.contains("digest mismatch")),
            "{failures:?}"
        );
    }

    #[test]
    fn recovery_gate_rejects_duplicate_effects() {
        let mut r = chaos_run("travel");
        r.recovery.as_mut().unwrap().duplicate_effects = 2;
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(
            failures.iter().any(|f| f.contains("duplicate effect")),
            "{failures:?}"
        );
        // A looser ceiling admits the same run.
        let mut r = chaos_run("travel");
        r.recovery.as_mut().unwrap().duplicate_effects = 2;
        assert!(recovery_gate(&report(vec![r]), 2_000, 2).is_empty());
    }

    #[test]
    fn recovery_gate_rejects_slow_recovery() {
        let mut r = chaos_run("travel");
        r.recovery.as_mut().unwrap().recovery_p99_ms = 5_000;
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(
            failures.iter().any(|f| f.contains("SLO ceiling")),
            "{failures:?}"
        );
    }

    #[test]
    fn recovery_gate_rejects_corrupt_intents() {
        let mut r = chaos_run("travel");
        r.recovery.as_mut().unwrap().ic_corrupt = 1;
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(
            failures.iter().any(|f| f.contains("corrupt intent")),
            "{failures:?}"
        );
    }

    #[test]
    fn recovery_gate_rejects_vacuous_storms() {
        // A storm that never fired proves nothing.
        let mut r = chaos_run("travel");
        r.recovery.as_mut().unwrap().injected_crashes = 0;
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(
            failures.iter().any(|f| f.contains("vacuous")),
            "{failures:?}"
        );

        // Crashes without a single observed recovery are just as vacuous.
        let mut r = chaos_run("travel");
        r.recovery.as_mut().unwrap().recovered_intents = 0;
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("recovery series is empty")),
            "{failures:?}"
        );

        // A report with no chaos run at all fails too.
        let failures = recovery_gate(&report(vec![run("travel", 4, 10.0, 0)]), 2_000, 0);
        assert!(
            failures.iter().any(|f| f.contains("no chaos runs")),
            "{failures:?}"
        );
    }

    #[test]
    fn recovery_gate_exempts_collector_only_storms() {
        // A storm whose whole crash budget landed on IC/GC passes has no
        // workflow intent to recover, so its empty recovery series is
        // legitimate — the digest check still has teeth.
        let mut r = chaos_run("travel");
        let rec = r.recovery.as_mut().unwrap();
        rec.crash_sites = [
            ("ic.post_scan".to_owned(), 12u64),
            ("gc.enter".to_owned(), 8),
        ]
        .into_iter()
        .collect();
        rec.recovered_intents = 0;
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(failures.is_empty(), "{failures:?}");

        // One workflow kill among the collector kills re-arms the
        // requirement.
        let mut r = chaos_run("travel");
        let rec = r.recovery.as_mut().unwrap();
        rec.crash_sites = [
            ("ic.post_scan".to_owned(), 12u64),
            ("wrapper.pre_done".to_owned(), 1),
        ]
        .into_iter()
        .collect();
        rec.recovered_intents = 0;
        let failures = recovery_gate(&report(vec![r]), 2_000, 0);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("recovery series is empty")),
            "{failures:?}"
        );
    }
}

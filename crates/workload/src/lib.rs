//! Open-loop load generation and latency recording for the Beldi
//! reproduction — the stand-in for wrk2 (§7.2).
//!
//! wrk2's two defining properties are reproduced:
//!
//! - **Open-loop constant-rate arrivals**: requests are issued on a fixed
//!   schedule regardless of how long earlier requests take, so saturation
//!   shows up as growing latency (Figs. 14/15/26) rather than reduced
//!   offered load.
//! - **Coordinated-omission-free recording**: each latency is measured
//!   from the request's *intended* arrival time, not from when a delayed
//!   issuer got around to sending it.
//!
//! All time is virtual ([`beldi_simclock::Clock`]); experiments compress
//! minutes into milliseconds without changing any ordering.

mod histogram;
mod runner;
mod sweep;

pub use histogram::{Histogram, Percentiles};
pub use runner::{RateRunner, RunReport};
pub use sweep::{sweep, SweepPoint};

//! Open-loop load generation and latency recording for the Beldi
//! reproduction — the stand-in for wrk2 (§7.2).
//!
//! wrk2's two defining properties are reproduced:
//!
//! - **Open-loop constant-rate arrivals**: requests are issued on a fixed
//!   schedule regardless of how long earlier requests take, so saturation
//!   shows up as growing latency (Figs. 14/15/26) rather than reduced
//!   offered load.
//! - **Coordinated-omission-free recording**: each latency is measured
//!   from the request's *intended* arrival time, not from when a delayed
//!   issuer got around to sending it.
//!
//! All time is virtual ([`beldi_simclock::Clock`]); experiments compress
//! minutes into milliseconds without changing any ordering.
//!
//! The crate also hosts the [`explore`] module: a seed-reproducible
//! crash-schedule model checker that sweeps every labelled crash point of
//! a workload, recovers via the intent collector, and diffs the final
//! state against a crash-free oracle (DESIGN.md §8).

//! The [`driver`] module adds the closed-loop counterpart: `N` client
//! workers saturate one shared environment and emit a machine-readable
//! [`BenchReport`] (`BENCH_results.json`), which the [`gate`] module
//! compares against a checked-in baseline in CI (DESIGN.md §9).

pub mod driver;
pub mod explore;
pub mod gate;
mod histogram;
mod runner;
mod sweep;

pub use driver::{
    drive, drive_async, drive_on, BenchReport, BenchRun, ChaosOptions, DriveOptions,
    InFlightSample, InFlightSeries, RecoverySection, RuntimeKind, StorageSample, StorageSeries,
};
pub use explore::{
    explore, mode_name, ExploreOptions, ExploreReport, PipelineApp, Violation, ViolationKind,
};
pub use gate::{
    gate, growth_gate, latency_gate, recovery_gate, GateReport, GateRow, LatencyGateRow,
};
pub use histogram::{Histogram, Percentiles};
pub use runner::{RateRunner, RunReport};
pub use sweep::{sweep, SweepPoint};

//! The GC-under-load conservation law, in its own test binary.
//!
//! This test's correctness argument depends on *real-time* margins (the
//! synchrony assumption: `T` real = t_max / clock_rate must dwarf an
//! instance's real execution time). Running it inside the shared
//! `driver.rs` binary let the harness's intra-binary parallelism
//! oversubscribe the host — wall-clock stalls balloon virtual time and
//! spuriously violate the assumption — so it lives alone here; cargo
//! runs test binaries sequentially.

use beldi::Mode;
use beldi_apps::{bench_app, MixProfile};
use beldi_workload::driver::{drive, BenchReport, BenchRun, DriveOptions};

fn drive_app(kind: &str, mode: Mode, mix: MixProfile, opts: &DriveOptions) -> BenchRun {
    let app = bench_app(kind, mode, mix).expect("known app");
    drive(app.as_ref(), mode, opts)
}

#[test]
fn online_gc_conserves_state_and_bounds_storage() {
    // The GC-under-load conservation law: a drive with online GC racing
    // the workers must land on the *identical* app-state fingerprint as
    // the GC-free run, while the metadata tables (intents, logs) stop
    // growing instead of scaling with request count.
    //
    // Clock rate and `T` are chosen so the synchrony assumption holds in
    // real terms (`T` = 4 s virtual = 160 ms real at rate 25 — far above
    // an instance's real execution time, with slack for slow or
    // oversubscribed CI hosts) while still being a small fraction of the
    // run's ~25 s virtual duration, so recycling reaches steady state
    // inside the measured window. Latency modelling stays on so request
    // durations (and hence the plateau shape) are virtual-time-dominated
    // rather than host-speed-dominated.
    let opts = DriveOptions {
        workers: 4,
        total_ops: 200,
        seed: 13,
        partitions: 8,
        clock_rate: 25.0,
        model_latency: true,
        gc: true,
        gc_t_max: std::time::Duration::from_secs(4),
        gc_period: std::time::Duration::from_secs(1),
        ..DriveOptions::default()
    };
    let nogc = DriveOptions {
        gc: false,
        ..opts.clone()
    };
    for (kind, mode) in [("travel", Mode::Beldi), ("media", Mode::Beldi)] {
        let with_gc = drive_app(kind, mode, MixProfile::Default, &opts);
        let without = drive_app(kind, mode, MixProfile::Default, &nogc);
        assert_eq!(with_gc.errors, 0, "{kind}: {with_gc:?}");
        assert_eq!(without.errors, 0, "{kind}");
        // Conservation: online GC must not change a single app-visible bit.
        assert_eq!(
            with_gc.state_digest, without.state_digest,
            "{kind}: online GC changed the final application state"
        );
        assert_eq!(with_gc.effects, without.effects, "{kind}");

        // Bounded storage: the collectors actually ran and recycled, and
        // the end-of-run metadata footprint is far below the GC-free
        // run's (which retains every intent/log row of all 200 requests).
        let last = with_gc.storage.samples.last().unwrap();
        assert!(last.gc_passes > 0, "{kind}: no GC pass completed");
        assert!(last.gc_recycled > 0, "{kind}: nothing was recycled");
        assert_eq!(last.gc_corrupt_chains, 0, "{kind}");
        let nogc_meta = without.storage.samples.last().unwrap().meta_rows;
        assert!(
            last.meta_rows * 2 < nogc_meta,
            "{kind}: GC left {} metadata rows vs {} without GC — not bounded",
            last.meta_rows,
            nogc_meta
        );
        // And the growth gate accepts the run.
        let report = BenchReport {
            seed: opts.seed,
            total_ops: opts.total_ops,
            mix: "default".into(),
            clock_rate: opts.clock_rate,
            tail_cache: true,
            runs: vec![with_gc],
        };
        let failures = beldi_workload::growth_gate(&report, 0.25);
        assert!(failures.is_empty(), "{kind}: {failures:?}");
    }
}

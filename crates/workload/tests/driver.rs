//! Integration tests for the closed-loop workload driver: seed
//! stability under concurrency, and conservation laws checked against
//! independently recomputed request streams.

use std::collections::BTreeMap;
use std::time::Duration;

use beldi::value::{Map, Value};
use beldi::Mode;
use beldi_apps::{bench_app, MixProfile, WorkflowApp};
use beldi_workload::driver::{
    drive, drive_async, ops_for_worker, value_digest, worker_rng, BenchReport, BenchRun,
    ChaosOptions, DriveOptions, RuntimeKind,
};
use beldi_workload::recovery_gate;

/// Fast functional options: zero storage latency, high clock rate.
fn test_opts(workers: usize, total_ops: u64, seed: u64) -> DriveOptions {
    DriveOptions {
        workers,
        total_ops,
        seed,
        partitions: 8,
        clock_rate: 2_000.0,
        model_latency: false,
        tail_cache: true,
        ..DriveOptions::default()
    }
}

/// Regenerates the exact multiset of requests a drive issues — the same
/// split and RNGs the workers use.
fn regenerate_requests(app: &dyn WorkflowApp, opts: &DriveOptions) -> Vec<Value> {
    let mut all = Vec::with_capacity(opts.total_ops as usize);
    for w in 0..opts.workers {
        let mut rng = worker_rng(opts.seed, w);
        for _ in 0..ops_for_worker(opts.total_ops, opts.workers, w) {
            all.push(app.gen_load_request(&mut rng));
        }
    }
    all
}

fn drive_app(kind: &str, mode: Mode, mix: MixProfile, opts: &DriveOptions) -> BenchRun {
    let app = bench_app(kind, mode, mix).expect("known app");
    drive(app.as_ref(), mode, opts)
}

#[test]
fn same_seed_and_workers_reproduce_op_counts_and_state() {
    let opts = test_opts(4, 60, 7);
    for (kind, mode) in [
        ("travel", Mode::Beldi),
        ("media", Mode::Beldi),
        ("social", Mode::CrossTable),
    ] {
        let a = drive_app(kind, mode, MixProfile::Default, &opts);
        let b = drive_app(kind, mode, MixProfile::Default, &opts);
        assert_eq!(a.ops, b.ops, "{kind}");
        assert_eq!(a.errors, 0, "{kind}: {a:?}");
        assert_eq!(b.errors, 0, "{kind}");
        assert_eq!(a.state_digest, b.state_digest, "{kind} state diverged");
        assert_eq!(a.effects, b.effects, "{kind} effects diverged");
    }
}

#[test]
fn different_seeds_change_the_state_digest() {
    let a = drive_app(
        "social",
        Mode::Beldi,
        MixProfile::WriteHeavy,
        &test_opts(2, 40, 1),
    );
    let b = drive_app(
        "social",
        Mode::Beldi,
        MixProfile::WriteHeavy,
        &test_opts(2, 40, 2),
    );
    assert_ne!(a.state_digest, b.state_digest);
}

#[test]
fn travel_inventory_is_conserved_under_8_workers() {
    let opts = test_opts(8, 160, 42);
    let mix = MixProfile::WriteHeavy;
    let app = bench_app("travel", Mode::Beldi, mix).expect("travel");
    let run = drive(app.as_ref(), Mode::Beldi, &opts);
    assert_eq!(run.errors, 0, "{run:?}");

    // Independently recompute the reservation demand per hotel/flight
    // from the deterministic request streams. Inventory is effectively
    // unbounded in the bench config, so every reservation must consume
    // exactly one room and one seat — no more (duplicated legs), no
    // fewer (lost legs), regardless of how 8 workers interleaved.
    let mut rooms: Map = Map::new();
    let mut seats: Map = Map::new();
    for i in 0..25 {
        rooms.insert(format!("hotel-{i}"), Value::Int(1_000_000));
        seats.insert(format!("flight-{i}"), Value::Int(1_000_000));
    }
    let mut reservations = 0i64;
    for req in regenerate_requests(app.as_ref(), &opts) {
        if req.get_str("op") == Some("reserve") {
            reservations += 1;
            for (map, field) in [(&mut rooms, "hotel"), (&mut seats, "flight")] {
                let key = req.get_str(field).unwrap().to_owned();
                let Some(Value::Int(n)) = map.get_mut(&key) else {
                    panic!("unknown {field} {key}");
                };
                *n -= 1;
            }
        }
    }
    assert!(reservations > 40, "write-heavy mix should reserve a lot");
    assert_eq!(
        run.effects,
        2 * reservations,
        "each reservation consumes exactly one room and one seat"
    );
    // The full per-key inventory must match the recomputation: the
    // travel fingerprint is its canonical state, one sorted map of
    // hotel/flight → remaining.
    let mut expected = rooms;
    expected.append(&mut seats);
    assert_eq!(
        run.state_digest,
        format!("{:016x}", value_digest(&Value::Map(expected))),
        "final inventory diverged from the request streams"
    );
}

#[test]
fn social_counters_are_conserved_under_8_workers() {
    let opts = test_opts(8, 120, 11);
    let mix = MixProfile::WriteHeavy;
    let app = bench_app("social", Mode::Beldi, mix).expect("social");
    let run = drive(app.as_ref(), Mode::Beldi, &opts);
    assert_eq!(run.errors, 0, "{run:?}");

    // Recompute the fan-out from the request streams. Every compose
    // stores exactly one post row, one shortened-url row, and one
    // user-timeline entry, and appends one home-timeline entry per
    // fan-out target: the author's followers plus the mentioned user
    // (deduplicated against the followers). Bench config: 40 users in a
    // ring, 4 followers each; windows are far from full at this scale.
    let users = 40i64;
    let follows = 4i64;
    let mut composes = 0i64;
    let mut hometl_entries = 0i64;
    for req in regenerate_requests(app.as_ref(), &opts) {
        if req.get_str("op") == Some("compose") {
            composes += 1;
            let author: i64 = req
                .get_str("user")
                .and_then(|u| u.strip_prefix("user-"))
                .unwrap()
                .parse()
                .unwrap();
            let mention: i64 = req
                .get_str("text")
                .and_then(|t| t.split_whitespace().find_map(|w| w.strip_prefix('@')))
                .and_then(|m| m.strip_prefix("user-"))
                .unwrap()
                .parse()
                .unwrap();
            // followers(author) = author-1 .. author-4 (mod users).
            let is_follower = (1..=follows).any(|d| (author + users - d) % users == mention);
            hometl_entries += follows + i64::from(!is_follower);
        }
    }
    assert!(composes > 30, "write-heavy mix should compose a lot");
    let expected_effects = composes       // post rows
        + composes                        // url rows
        + composes                        // user-timeline entries
        + hometl_entries; // home-timeline fan-out
    assert_eq!(
        run.effects, expected_effects,
        "fan-out effects diverged from the request streams"
    );
}

#[test]
fn cross_table_and_beldi_agree_on_travel_state() {
    // The final application state is a function of the request multiset,
    // not of the logging design: both fault-tolerant modes must land on
    // the same inventory. (Travel runs without the cross-SSF transaction
    // in cross-table mode, but with unbounded inventory both legs always
    // succeed, so the final state still matches.)
    let opts = test_opts(4, 80, 3);
    let a = drive_app("travel", Mode::Beldi, MixProfile::Default, &opts);
    let b = drive_app("travel", Mode::CrossTable, MixProfile::Default, &opts);
    assert_eq!(a.errors, 0);
    assert_eq!(b.errors, 0);
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.effects, b.effects);
}

#[test]
fn tail_cache_does_not_change_results_only_cost() {
    let cached = test_opts(4, 60, 5);
    let uncached = DriveOptions {
        tail_cache: false,
        ..cached.clone()
    };
    let a = drive_app("travel", Mode::Beldi, MixProfile::Default, &cached);
    let b = drive_app("travel", Mode::Beldi, MixProfile::Default, &uncached);
    assert_eq!(a.state_digest, b.state_digest, "cache changed semantics");
    assert_eq!(a.effects, b.effects);
    assert!(
        a.db.queries < b.db.queries,
        "cache should eliminate traversal scans ({} vs {})",
        a.db.queries,
        b.db.queries
    );
}

#[test]
fn write_combining_and_snapshot_reads_change_cost_not_results() {
    // The combiner folds concurrent tail appends into one conditional
    // write and snapshot reads replace per-key traversal scans with one
    // table snapshot: both are pure optimizations, so the final state
    // and effect counts must match the plain protocol exactly.
    let plain = test_opts(4, 60, 5);
    let optimized = DriveOptions {
        write_combine: true,
        snapshot_reads: true,
        ..plain.clone()
    };
    let a = drive_app("travel", Mode::Beldi, MixProfile::Default, &plain);
    let b = drive_app("travel", Mode::Beldi, MixProfile::Default, &optimized);
    assert_eq!(a.errors, 0);
    assert_eq!(b.errors, 0);
    assert_eq!(
        a.state_digest, b.state_digest,
        "combining changed semantics"
    );
    assert_eq!(a.effects, b.effects);
    assert!(
        b.db.scans > a.db.scans,
        "snapshot reads should replace queries with table scans ({} vs {})",
        b.db.scans,
        a.db.scans
    );
}

#[test]
fn defaults_off_run_is_bit_identical_to_explicit_off() {
    // The A/B guarantee the flags rest on: a default-configured drive
    // and one that spells out `write_combine: false, snapshot_reads:
    // false` are the *same* protocol — identical digests, effects, and
    // database operation counts.
    let defaults = test_opts(4, 60, 11);
    let explicit = DriveOptions {
        write_combine: false,
        snapshot_reads: false,
        ..defaults.clone()
    };
    let a = drive_app("travel", Mode::Beldi, MixProfile::Default, &defaults);
    let b = drive_app("travel", Mode::Beldi, MixProfile::Default, &explicit);
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.effects, b.effects);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.errors, b.errors);
}

#[test]
fn bounded_tail_cache_preserves_smoke_scale_behaviour() {
    // Capacity A/B: at smoke-scale key cardinality the bounded default
    // cache must behave identically to an effectively unbounded one —
    // same state, same database operation counts (hit rate preserved).
    let base = test_opts(4, 80, 21);
    let unbounded = DriveOptions {
        tail_cache_capacity: Some(1 << 22),
        ..base.clone()
    };
    let a = drive_app("travel", Mode::Beldi, MixProfile::Default, &base);
    let b = drive_app("travel", Mode::Beldi, MixProfile::Default, &unbounded);
    assert_eq!(a.state_digest, b.state_digest);
    assert_eq!(a.effects, b.effects);
    // Query counts can wobble slightly run-to-run (wait-die retries
    // depend on interleaving); hit-rate parity means the scan counts
    // agree within a whisker rather than bit-for-bit.
    let (qa, qb) = (a.db.queries, b.db.queries);
    assert!(
        qa.abs_diff(qb) * 25 <= qa.max(qb),
        "bounded cache lost hits at smoke scale: {qa} vs {qb} scans"
    );

    // A pathologically tiny cache still changes only cost, never results.
    let tiny = DriveOptions {
        tail_cache_capacity: Some(16),
        ..base
    };
    let c = drive_app("travel", Mode::Beldi, MixProfile::Default, &tiny);
    assert_eq!(c.state_digest, a.state_digest, "eviction changed semantics");
    assert_eq!(c.effects, a.effects);
    assert!(
        c.db.queries >= a.db.queries,
        "a tiny cache cannot out-hit the default"
    );
}

/// Wraps a single run in a report shell so the recovery gate can judge it.
fn report_of(run: BenchRun, opts: &DriveOptions) -> BenchReport {
    BenchReport {
        seed: opts.seed,
        total_ops: opts.total_ops,
        mix: "default".into(),
        clock_rate: opts.clock_rate,
        tail_cache: opts.tail_cache,
        runs: vec![run],
    }
}

/// A crash storm over live traffic with online IC + GC must end in the
/// crash-free oracle's state: every killed workflow is finished exactly
/// once by a root retry or an intent-collector re-launch, and nothing is
/// executed twice.
#[test]
fn chaos_storm_with_relaunch_recovers_to_the_oracle_state() {
    let opts = DriveOptions {
        chaos: Some(ChaosOptions {
            // The default lease is sized for the bench's 40× clock; at
            // this test's 2000× clock a virtual second is 0.5 ms of real
            // time and debug-build stalls inflate request latencies to
            // thousands of virtual seconds — any tight lease (or its
            // client retry window) would expire mid-recovery. Keep the
            // contract enforced but never binding.
            t_max: Duration::from_secs(1_000_000),
            ..ChaosOptions::default()
        }),
        ..test_opts(8, 80, 7)
    };
    let run = drive_app("media", Mode::Beldi, MixProfile::Default, &opts);
    assert_eq!(run.errors, 0, "{run:?}");
    let rec = run.recovery.clone().expect("chaos runs record recovery");
    assert!(rec.injected_crashes > 0, "the storm had no teeth: {rec:?}");
    assert!(rec.digest_match, "conservation violated: {rec:?}");
    assert_eq!(rec.duplicate_effects, 0, "{rec:?}");
    assert_eq!(rec.ic_corrupt, 0, "{rec:?}");

    let failures = recovery_gate(&report_of(run, &opts), u64::MAX, 0);
    assert!(failures.is_empty(), "{failures:?}");
}

/// Drops collector-pass and platform-timeout labels, whose firing depends
/// on timer scheduling rather than the seeded schedule.
fn deterministic_sites(sites: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    sites
        .iter()
        .filter(|(k, _)| {
            !k.starts_with("ic.") && !k.starts_with("gc.") && !k.starts_with("platform.")
        })
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// The same `--chaos` seed must reproduce the same crash schedule. With
/// re-launch off (one attempt per root, no IC timers), collector kills
/// disabled, and a single driver worker, every execution stream is a
/// pure function of the seed, and three runs are bit-identical: same
/// kills, same sites, same digest.
///
/// One worker is load-bearing, not a simplification: with several OS
/// worker threads, cross-worker 2PL contention order is host-scheduled,
/// and a wait-die abort re-executes the callee — advancing the
/// instance generation that feeds the storm's decision hash, so two
/// identically-seeded runs can legitimately diverge under host load.
/// Multi-worker determinism belongs to the async engine, whose seeded
/// single-thread scheduler is host-immune (see
/// `async_same_seed_runs_are_bit_identical_at_8_workers`). The retry
/// below guards any residual host noise: noise never repeats
/// deterministically, a genuine regression does.
#[test]
fn chaos_same_seed_runs_are_bit_identical_without_relaunch() {
    let opts = DriveOptions {
        chaos: Some(ChaosOptions {
            // Hot enough that some single-attempt roots die for good
            // (asserted below via `errors`), cool enough that no callee
            // exhausts its retry budget at this seed.
            ssf_kill_prob: 4e-3,
            collector_kill_prob: 0.0,
            relaunch: false,
            // Keep both the lease and GC recycling out of the schedule.
            // The lease must be unreachable even under pathological host
            // load: a single load-induced lease kill perturbs the callee
            // generation sequence — and with it the storm's (otherwise
            // pure) kill schedule.
            t_max: Duration::from_secs(1_000_000_000),
            ..ChaosOptions::default()
        }),
        ..test_opts(1, 120, 13)
    };
    let compare = || -> Result<(), String> {
        let a = drive_app("social", Mode::Beldi, MixProfile::Default, &opts);
        let b = drive_app("social", Mode::Beldi, MixProfile::Default, &opts);
        let c = drive_app("social", Mode::Beldi, MixProfile::Default, &opts);
        let ra = a.recovery.unwrap();
        assert!(ra.injected_crashes > 0, "the storm had no teeth: {ra:?}");
        assert!(a.errors > 0, "killed single-attempt roots must error");
        for other in [b, c] {
            let ro = other.recovery.unwrap();
            if ra.injected_crashes != ro.injected_crashes {
                return Err(format!(
                    "kill counts diverged: {} vs {}",
                    ra.injected_crashes, ro.injected_crashes
                ));
            }
            let (sa, so) = (
                deterministic_sites(&ra.crash_sites),
                deterministic_sites(&ro.crash_sites),
            );
            if sa != so {
                return Err(format!("kill schedule diverged: {sa:?} vs {so:?}"));
            }
            if a.state_digest != other.state_digest {
                return Err(format!(
                    "post-storm state diverged: {} vs {}",
                    a.state_digest, other.state_digest
                ));
            }
            if (a.effects, a.ops, a.errors) != (other.effects, other.ops, other.errors) {
                return Err("effect/op/error counts diverged".to_owned());
            }
            if ra.oracle_digest != ro.oracle_digest {
                return Err("oracle digests diverged".to_owned());
            }
        }
        Ok(())
    };
    if let Err(first) = compare() {
        eprintln!("first attempt diverged ({first}); re-running to rule out host-load noise");
        compare().expect("identically-seeded storms diverged twice");
    }
}

/// The executor-determinism suite's driver-level leg: three
/// identically-seeded async runs at 8 workers must be indistinguishable
/// in everything the determinism contract covers — state digest, effect
/// and op counts, errors — and each must show the full request load
/// concurrently in flight. (The in-flight *series* comes from a
/// wall-clock observer thread and is excluded from the contract, like
/// the thread path's sampler; the runtime crate pins the raw task
/// schedule via its trace tests.)
#[test]
fn async_same_seed_runs_are_bit_identical_at_8_workers() {
    let opts = test_opts(8, 96, 29);
    let app = bench_app("travel", Mode::Beldi, MixProfile::Default).expect("travel");
    let a = drive_async(app.as_ref(), Mode::Beldi, &opts);
    assert_eq!(a.errors, 0, "{a:?}");
    for _ in 0..2 {
        let b = drive_async(app.as_ref(), Mode::Beldi, &opts);
        assert_eq!(a.state_digest, b.state_digest, "digest diverged");
        assert_eq!(a.effects, b.effects);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.errors, b.errors);
        let ib = b.in_flight.as_ref().expect("async runs record in-flight");
        assert!(ib.high_water >= 96, "all requests spawn up front: {ib:?}");
    }
}

/// Canary for the gate itself: with intent re-launch disabled, killed
/// workflows stay dead, so the chaos digest cannot match the oracle and
/// the recovery gate must fail. If this test ever breaks, the gate has
/// gone blind.
#[test]
fn disabling_relaunch_fails_the_conservation_gate() {
    let opts = DriveOptions {
        chaos: Some(ChaosOptions {
            // Total blackout: every execution dies at its first probe, so
            // with one attempt per root and no collectors nothing ever
            // commits — deterministically, whatever the interleaving.
            ssf_kill_prob: 1.0,
            relaunch: false,
            ..ChaosOptions::default()
        }),
        ..test_opts(8, 80, 21)
    };
    let run = drive_app("social", Mode::Beldi, MixProfile::Default, &opts);
    assert!(
        !run.recovery.as_ref().unwrap().digest_match,
        "dead workflows left no trace? {:?}",
        run.recovery
    );
    let failures = recovery_gate(&report_of(run, &opts), u64::MAX, 0);
    assert!(
        failures.iter().any(|f| f.contains("digest mismatch")),
        "{failures:?}"
    );
}

/// Sync-vs-async equivalence, the redesigned execution API's core
/// contract: the cooperative task-per-request engine must land on the
/// same final state and effect counts as the thread-per-worker closed
/// loop, because both issue the same request multiset through the same
/// protocol paths. Checked across apps and modes.
#[test]
fn async_drive_matches_thread_drive_state() {
    let opts = test_opts(4, 60, 7);
    for (kind, mode) in [
        ("travel", Mode::Beldi),
        ("media", Mode::Beldi),
        ("social", Mode::CrossTable),
    ] {
        let app = bench_app(kind, mode, MixProfile::Default).expect("known app");
        let t = drive(app.as_ref(), mode, &opts);
        let a = drive_async(app.as_ref(), mode, &opts);
        assert_eq!(a.errors, 0, "{kind}: {a:?}");
        assert_eq!(
            t.state_digest, a.state_digest,
            "{kind}/{mode:?}: engines diverged"
        );
        assert_eq!(t.effects, a.effects, "{kind}");
        assert_eq!(t.ops, a.ops, "{kind}");
        assert_eq!(a.runtime, RuntimeKind::Async);
        let in_flight = a.in_flight.expect("async runs record in-flight");
        assert!(
            in_flight.high_water >= 60,
            "all 60 requests spawn up front: {in_flight:?}"
        );
    }
}

/// The tentpole capacity claim: ten thousand concurrent in-flight
/// workflows in one process, over a platform capped at four worker
/// threads — requests past the admission gate park on executor wakers,
/// not OS threads. Conservation is audited against an independent
/// recomputation of the request streams. Baseline mode keeps
/// per-request cost low enough for a debug-build tier-1 test, but its
/// `begin_tx` is a no-op (no wait-die locks), so the audit is only
/// exact under race-free execution: capping the platform at 4 yields an
/// admission gate of one root workflow at a time while every other
/// request stays parked (and counted) at the semaphore. The
/// full-protocol equivalence and chaos claims are pinned by the
/// beldi-mode tests above/below, and the release-built bench driver
/// runs the beldi-mode 10k demonstration for
/// `BENCH_async_results.json`.
#[test]
fn async_drive_sustains_10k_in_flight_workflows() {
    let opts = DriveOptions {
        platform_concurrency: Some(4),
        ..test_opts(8, 10_000, 42)
    };
    let app = bench_app("travel", Mode::Baseline, MixProfile::Default).expect("travel");
    let run = drive_async(app.as_ref(), Mode::Baseline, &opts);
    assert_eq!(run.errors, 0, "errors at 10k in flight");
    let in_flight = run.in_flight.as_ref().expect("async runs record in-flight");
    assert!(
        in_flight.high_water >= 10_000,
        "high water {} < 10k — the load was not concurrently in flight",
        in_flight.high_water
    );

    // Conservation audit: every reservation consumed exactly one room
    // and one seat, and the final inventory equals the recomputation.
    let mut rooms: Map = Map::new();
    let mut seats: Map = Map::new();
    for i in 0..25 {
        rooms.insert(format!("hotel-{i}"), Value::Int(1_000_000));
        seats.insert(format!("flight-{i}"), Value::Int(1_000_000));
    }
    let mut reservations = 0i64;
    for req in regenerate_requests(app.as_ref(), &opts) {
        if req.get_str("op") == Some("reserve") {
            reservations += 1;
            for (map, field) in [(&mut rooms, "hotel"), (&mut seats, "flight")] {
                let key = req.get_str(field).unwrap().to_owned();
                let Some(Value::Int(n)) = map.get_mut(&key) else {
                    panic!("unknown {field} {key}");
                };
                *n -= 1;
            }
        }
    }
    assert_eq!(run.effects, 2 * reservations, "lost or duplicated legs");
    let mut expected = rooms;
    expected.append(&mut seats);
    assert_eq!(
        run.state_digest,
        format!("{:016x}", value_digest(&Value::Map(expected))),
        "final inventory diverged from the request streams"
    );
}

/// Full-protocol (Beldi mode) in-flight scale at debug-affordable size:
/// a thousand workflows in flight over 64 worker threads, exact-once
/// conservation against the thread engine's digest.
#[test]
fn async_drive_beldi_mode_parks_1k_workflows() {
    let opts = DriveOptions {
        platform_concurrency: Some(64),
        ..test_opts(8, 1_000, 17)
    };
    let app = bench_app("travel", Mode::Beldi, MixProfile::Default).expect("travel");
    let a = drive_async(app.as_ref(), Mode::Beldi, &opts);
    assert_eq!(a.errors, 0, "{:?}", a.errors);
    let in_flight = a.in_flight.as_ref().expect("async runs record in-flight");
    assert!(
        in_flight.high_water >= 1_000,
        "high water {} < 1k",
        in_flight.high_water
    );
    let t = drive(app.as_ref(), Mode::Beldi, &opts);
    assert_eq!(t.state_digest, a.state_digest, "engines diverged");
    assert_eq!(t.effects, a.effects);
}

/// `--runtime async` chaos: the storm kills SSFs and executor-task
/// collector passes mid-flight while all requests are in flight at
/// once; recovery must still converge on the crash-free *thread*
/// oracle's digest (so this is also a cross-engine conservation check).
#[test]
fn async_chaos_storm_recovers_to_the_oracle_state() {
    let opts = DriveOptions {
        chaos: Some(ChaosOptions {
            // Same lease reasoning as the thread chaos test: enforced
            // but never binding at this clock rate.
            t_max: Duration::from_secs(1_000_000),
            ..ChaosOptions::default()
        }),
        ..test_opts(8, 80, 7)
    };
    let app = bench_app("media", Mode::Beldi, MixProfile::Default).expect("media");
    let run = drive_async(app.as_ref(), Mode::Beldi, &opts);
    assert_eq!(run.errors, 0, "{run:?}");
    let rec = run.recovery.clone().expect("chaos runs record recovery");
    assert!(rec.injected_crashes > 0, "the storm had no teeth: {rec:?}");
    assert!(rec.digest_match, "conservation violated: {rec:?}");
    assert_eq!(rec.duplicate_effects, 0, "{rec:?}");
    assert_eq!(rec.ic_corrupt, 0, "{rec:?}");
    let failures = recovery_gate(&report_of(run, &opts), u64::MAX, 0);
    assert!(failures.is_empty(), "{failures:?}");
}

/// Online GC under the async engine: collector passes run as executor
/// tasks ([`beldi::BeldiEnv::spawn_collectors_on`]) instead of timer
/// threads, and must actually complete passes during the run (a pass
/// is a scan; it happens every `gc_period` whether or not anything is
/// old enough to recycle). `T` must be unbreachable, not merely large:
/// host stalls scale into virtual latency at 2000×, so any horizon a
/// stalled run can out-age lets GC recycle a live workflow's intent
/// and turns host scheduling noise into spurious root errors (the §13
/// sizing rule). Thirty virtual days requires ~21 wall-minutes inside
/// one run to breach — beyond any plausible test-binary lifetime.
#[test]
fn async_drive_runs_gc_collectors_as_tasks() {
    let opts = DriveOptions {
        gc: true,
        gc_period: Duration::from_millis(200),
        gc_t_max: Duration::from_secs(30 * 24 * 3_600),
        ..test_opts(4, 120, 3)
    };
    let app = bench_app("travel", Mode::Beldi, MixProfile::Default).expect("travel");
    let run = drive_async(app.as_ref(), Mode::Beldi, &opts);
    assert_eq!(run.errors, 0, "{run:?}");
    assert!(run.gc);
    let last = run.storage.samples.last().expect("final storage sample");
    assert!(
        last.gc_passes >= 1,
        "collector tasks completed no GC passes: {last:?}"
    );
}

#[test]
fn run_report_fields_are_sound() {
    let run = drive_app(
        "media",
        Mode::Beldi,
        MixProfile::Default,
        &test_opts(2, 30, 9),
    );
    assert_eq!(run.ops, 30);
    assert_eq!(run.errors, 0);
    assert!(run.elapsed_virtual_us > 0);
    assert!(run.throughput_rps > 0.0);
    assert!(run.db.total_ops() > 0);
    assert_eq!(run.db.partition_ops.len(), 8);
    assert!(run.latency.p50_us <= run.latency.p99_us);
    assert!(run.latency.p99_us <= run.latency.max_us);
    assert_eq!(run.key(), "media/beldi/w2");
}

//! Property tests for the latency histogram: quantile bounds, monotonicity,
//! and merge equivalence.

use std::time::Duration;

use beldi_workload::Histogram;
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..10_000_000, 1..400)
}

proptest! {
    /// Quantiles are bounded by the true min and max.
    #[test]
    fn quantiles_within_min_max(us in samples(), q in 0.0f64..1.0) {
        let mut h = Histogram::new();
        for &v in &us {
            h.record(Duration::from_micros(v));
        }
        let lo = *us.iter().min().unwrap();
        let hi = *us.iter().max().unwrap();
        let got = h.quantile(q).as_micros() as u64;
        prop_assert!(got >= lo, "q={q}: {got} < min {lo}");
        prop_assert!(got <= hi, "q={q}: {got} > max {hi}");
    }

    /// Quantiles are monotone in `q`.
    #[test]
    fn quantiles_monotone(us in samples()) {
        let mut h = Histogram::new();
        for &v in &us {
            h.record(Duration::from_micros(v));
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
    }

    /// The median has bounded relative error against an exact sort.
    #[test]
    fn median_relative_error_bounded(us in samples()) {
        let mut h = Histogram::new();
        for &v in &us {
            h.record(Duration::from_micros(v));
        }
        let mut sorted = us.clone();
        sorted.sort_unstable();
        let exact = sorted[(sorted.len() - 1) / 2] as f64;
        let got = h.quantile(0.5).as_micros() as f64;
        // Log-bucketed storage guarantees bounded relative error; allow
        // 10% (bucket width is ~3%, plus rank rounding on tiny samples).
        prop_assert!(
            (got - exact).abs() <= exact * 0.10 + 2.0,
            "median {got} vs exact {exact}"
        );
    }

    /// Merging two histograms equals recording the concatenation.
    #[test]
    fn merge_is_concatenation(a in samples(), b in samples()) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(Duration::from_micros(v));
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(Duration::from_micros(v));
        }
        let mut hc = Histogram::new();
        for &v in a.iter().chain(&b) {
            hc.record(Duration::from_micros(v));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.len(), hc.len());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q), "q={}", q);
        }
        prop_assert_eq!(ha.max(), hc.max());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.mean(), hc.mean());
    }
}

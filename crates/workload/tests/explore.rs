//! The crash-schedule explorer's own test suite: clean sweeps over a
//! purpose-built pipeline app and a real DeathStarBench-derived app, the
//! canary self-test (a planted exactly-once bug must be *caught*),
//! seed-stability, and the GC-quiescence property.

use beldi::{BeldiEnv, Mode, RandomCrashPolicy};
use beldi_apps::{MediaApp, WorkflowApp};
use beldi_workload::{explore, ExploreOptions, PipelineApp, ViolationKind};

#[test]
fn depth1_sweep_of_pipeline_is_clean() {
    let opts = ExploreOptions {
        requests: 3,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::Beldi, &opts);
    assert!(
        report.ok(),
        "clean pipeline must pass every schedule:\n{:#?}",
        report.violations
    );
    assert!(
        report.crash_points > 30,
        "expected a rich crash stream, got {}",
        report.crash_points
    );
    assert_eq!(report.schedules, report.crash_points);
    // Every depth-1 schedule fired exactly its one crash.
    assert_eq!(report.crashes_injected, report.schedules as u64);
    assert_eq!(report.oracle_effects, 3 * 3); // count + gate + worker per request
}

#[test]
fn depth1_sweep_in_cross_table_mode_is_clean() {
    let opts = ExploreOptions {
        requests: 2,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::CrossTable, &opts);
    assert!(report.ok(), "{:#?}", report.violations);
    assert!(report.crash_points > 20);
}

#[test]
fn baseline_mode_runs_oracle_only() {
    // Baseline mode makes no exactly-once claim — a crashed instance is
    // simply lost — so the explorer verifies the crash-free oracle and
    // schedules nothing.
    let report = explore(&PipelineApp, Mode::Baseline, &ExploreOptions::default());
    assert!(report.ok(), "{:#?}", report.violations);
    assert_eq!(report.schedules, 0);
    assert_eq!(report.crashes_injected, 0);
    assert!(report.oracle_effects > 0);
}

#[test]
fn depth2_scripted_pairs_are_clean() {
    let opts = ExploreOptions {
        requests: 2,
        stride: 11,
        depth2_samples: 6,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::Beldi, &opts);
    assert!(report.ok(), "{:#?}", report.violations);
    // The depth-2 pairs each landed at least their first crash; most land
    // both, so the total must exceed the depth-1 count.
    let depth1 = report.schedules - 6;
    assert!(
        report.crashes_injected > depth1 as u64,
        "depth-2 schedules should add second crashes: {} vs {depth1}",
        report.crashes_injected
    );
}

/// Satellite: the canary self-test. A deliberately planted exactly-once
/// bug (read-log appends skip their first-writer-wins guard, so replays
/// re-read fresh state) must be *detected* by the sweep — proof the
/// checker has teeth.
#[test]
fn canary_bug_is_caught_by_the_sweep() {
    let opts = ExploreOptions {
        requests: 2,
        canary: true,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::Beldi, &opts);
    assert!(
        !report.ok(),
        "the sweep failed to detect the planted exactly-once bug"
    );
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::StateDivergence | ViolationKind::EffectDivergence
        )),
        "expected state/effect divergence, got {:#?}",
        report.violations
    );
    // And the identical sweep without the canary is clean — the detection
    // is the bug, not the harness.
    let clean = explore(
        &PipelineApp,
        Mode::Beldi,
        &ExploreOptions {
            requests: 2,
            canary: false,
            ..ExploreOptions::default()
        },
    );
    assert!(clean.ok(), "{:#?}", clean.violations);
}

/// A depth-1 sweep with the write combiner enabled must stay clean: the
/// `daal.combine.*` labels join the crash stream, so schedules now kill
/// leaders between batch flush and result publication, and recovery must
/// still converge to the oracle's state exactly once.
#[test]
fn depth1_sweep_with_write_combining_is_clean() {
    let opts = ExploreOptions {
        requests: 3,
        write_combine: true,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::Beldi, &opts);
    assert!(
        report.ok(),
        "combined appends must survive every schedule:\n{:#?}",
        report.violations
    );
    // The combiner's own crash points widen the stream relative to the
    // plain protocol run of the same workload.
    let plain = explore(
        &PipelineApp,
        Mode::Beldi,
        &ExploreOptions {
            requests: 3,
            ..ExploreOptions::default()
        },
    );
    assert!(
        report.crash_points > plain.crash_points,
        "expected daal.combine.* points on top of the plain stream \
         ({} vs {})",
        report.crash_points,
        plain.crash_points
    );
}

/// The combiner canary self-test: with replay detection dropped from the
/// combined-append path, a crashed-and-re-executed logger re-applies its
/// write, and the sweep must catch the divergence.
#[test]
fn combine_canary_bug_is_caught_by_the_sweep() {
    let opts = ExploreOptions {
        requests: 2,
        write_combine: true,
        canary_combine: true,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::Beldi, &opts);
    assert!(
        !report.ok(),
        "the sweep failed to detect the planted combiner replay bug"
    );
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::StateDivergence | ViolationKind::EffectDivergence
        )),
        "expected state/effect divergence, got {:#?}",
        report.violations
    );
    // The same sweep with the canary off (combiner still on) is clean.
    let clean = explore(
        &PipelineApp,
        Mode::Beldi,
        &ExploreOptions {
            requests: 2,
            write_combine: true,
            canary_combine: false,
            ..ExploreOptions::default()
        },
    );
    assert!(clean.ok(), "{:#?}", clean.violations);
}

/// Satellite: identical seed ⇒ identical explorer verdict, twice over.
#[test]
fn explorer_verdict_is_seed_stable() {
    let opts = ExploreOptions {
        requests: 2,
        stride: 3,
        depth2_samples: 3,
        seed: 0xBE1D1,
        ..ExploreOptions::default()
    };
    let a = explore(&PipelineApp, Mode::Beldi, &opts);
    let b = explore(&PipelineApp, Mode::Beldi, &opts);
    assert_eq!(a, b, "same seed must reproduce the same report");
    assert!(a.ok(), "{:#?}", a.violations);
}

/// Satellite: identical `RandomCrashPolicy` seed ⇒ identical crash
/// schedule (the fired crash points match position for position).
#[test]
fn random_crash_policy_is_seed_stable() {
    let run = || {
        let env = BeldiEnv::for_tests();
        PipelineApp.setup(&env);
        env.platform().faults().start_trace();
        env.platform()
            .faults()
            .set_random_policy(Some(RandomCrashPolicy {
                prob: 0.05,
                max_crashes: 10,
                seed: 7,
            }));
        for i in 0..6 {
            env.invoke("root", beldi::value::Value::Int(i)).unwrap();
        }
        let trace = env.platform().faults().take_trace();
        let state = PipelineApp.canonical_state(&env);
        let fired: Vec<(u64, String)> = trace
            .iter()
            .filter(|t| t.crashed)
            .map(|t| (t.step, t.label.clone()))
            .collect();
        (fired, state, env.platform().faults().injected_count())
    };
    let (fired_a, state_a, n_a) = run();
    let (fired_b, state_b, n_b) = run();
    assert!(n_a > 0, "the policy should have injected something");
    assert_eq!(n_a, n_b);
    assert_eq!(fired_a, fired_b, "crash schedules must match exactly");
    assert_eq!(state_a, state_b);
}

/// Satellite: GC quiescence. For every explored schedule, once the
/// crashed-and-recovered workload drains and `T` elapses, repeated GC
/// passes must empty the read/invoke logs and intent tables and compact
/// every DAAL to head + tail.
#[test]
fn gc_quiesces_after_every_explored_schedule() {
    let opts = ExploreOptions {
        requests: 2,
        stride: 2,
        gc_check: true,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::Beldi, &opts);
    assert!(report.ok(), "{:#?}", report.violations);

    let xt = explore(&PipelineApp, Mode::CrossTable, &opts);
    assert!(xt.ok(), "{:#?}", xt.violations);
}

/// Tentpole property: interleaving GC passes with live SSF traffic —
/// including schedules that kill the *collector itself* between any two
/// of the paper's six GC steps — never diverges from the crash-free
/// oracle. The collectors' fixed `gc.*` crash points join the global
/// stream, so the depth-1 sweep covers crashes inside GC passes exactly
/// like crashes inside SSF instances.
#[test]
fn gc_interleaved_sweep_is_clean_and_covers_gc_crash_points() {
    let plain = ExploreOptions {
        requests: 2,
        ..ExploreOptions::default()
    };
    let interleaved = ExploreOptions {
        gc_interleave: true,
        ..plain.clone()
    };
    let base = explore(&PipelineApp, Mode::Beldi, &plain);
    let report = explore(&PipelineApp, Mode::Beldi, &interleaved);
    assert!(
        report.ok(),
        "GC-interleaved sweep must pass every schedule:\n{:#?}",
        report.violations
    );
    // The collectors contribute their six fixed crash points per pass —
    // the `worker.pre_handler` dispatch probe plus the five gc.* step
    // boundaries: 2 SSFs × 2 requests × 6 labels on top of the plain
    // stream (whose own requests already carry their dispatch probes).
    assert_eq!(
        report.crash_points,
        base.crash_points + 2 * 2 * 6,
        "GC passes must add exactly their fixed step-boundary points"
    );
    // Every schedule — including those that killed a GC pass — fired.
    assert_eq!(report.crashes_injected, report.schedules as u64);
    // And the interleaved sweep is reproducible.
    let again = explore(&PipelineApp, Mode::Beldi, &interleaved);
    assert_eq!(report, again, "interleaved exploration must be seed-stable");
}

/// GC interleaving composes with the quiescence check in cross-table
/// mode too (write logs pruned under traffic, then fully drained).
#[test]
fn gc_interleaved_cross_table_sweep_with_quiescence_is_clean() {
    let opts = ExploreOptions {
        requests: 2,
        stride: 3,
        gc_interleave: true,
        gc_check: true,
        ..ExploreOptions::default()
    };
    let report = explore(&PipelineApp, Mode::CrossTable, &opts);
    assert!(report.ok(), "{:#?}", report.violations);
}

/// A strided sweep over a real application (the movie review service)
/// in Beldi mode — the integration-level smoke the CI job mirrors.
#[test]
fn media_app_strided_sweep_is_clean() {
    let app = MediaApp::small();
    let opts = ExploreOptions {
        requests: 2,
        stride: 9,
        ..ExploreOptions::default()
    };
    let report = explore(&app, Mode::Beldi, &opts);
    assert!(report.ok(), "{:#?}", report.violations);
    assert!(
        report.crash_points > 50,
        "a media request should traverse many crash points, got {}",
        report.crash_points
    );
}
